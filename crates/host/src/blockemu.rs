//! Block-interface emulation over a ZNS SSD.
//!
//! §2.3: "it was straightforward to implement the block interface on the
//! host using ZNS SSDs … aided by the *simple copy* command". [`BlockEmu`]
//! is that layer — a log-structured translation layer in the mold of
//! Linux's dm-zoned and IBM's SALSA (the system behind the paper's "22×
//! lower tail latencies" citation [39]):
//!
//! - Writes append to a current data zone; an LBA map tracks locations.
//! - Overwrites make garbage; **host-side GC** relocates live pages with
//!   simple-copy (no host bus traffic) and resets dead zones.
//! - Crucially, *when* GC runs is governed by a [`ReclaimPolicy`] chosen
//!   by the host — the control conventional FTLs never expose. Running it
//!   in idle windows is what produces SALSA-like tail-latency wins (E7).

use crate::error::HostError;
use crate::sched::ReclaimPolicy;
use crate::zalloc::ZonedLocation;
use crate::Result;
use bh_flash::{decode_oob, encode_oob};
use bh_metrics::Nanos;
use bh_obs::{Ctr, Obs};
use bh_trace::{FaultEvent, HostEvent, Tracer};
use bh_zns::backend::ZonedDevice;
use bh_zns::{ZnsDevice, ZnsError, ZoneId, ZoneState};
use std::collections::BTreeSet;

/// The free-zone pool, ordered for host-side wear leveling without a
/// per-allocation scan.
///
/// Replays the historical `min_by_key(resets)` + `swap_remove` selection
/// exactly: `by_reset` keys are `(resets, position)`, so the first
/// element names the first pool position holding the minimum reset
/// count, and `pop_least_reset` re-keys the element `swap_remove` moves
/// into the vacated position.
#[derive(Debug, Default)]
struct ZoneFreeList {
    /// Pool contents with each zone's reset count at insertion. A pooled
    /// zone is Empty and is never reset again while pooled, so the
    /// recorded key stays correct.
    slots: Vec<(ZoneId, u64)>,
    /// `(resets, position)` for every slot.
    by_reset: BTreeSet<(u64, u32)>,
}

impl ZoneFreeList {
    fn len(&self) -> usize {
        self.slots.len()
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.by_reset.clear();
    }

    fn push(&mut self, zone: ZoneId, resets: u64) {
        self.by_reset.insert((resets, self.slots.len() as u32));
        self.slots.push((zone, resets));
    }

    fn pop_least_reset(&mut self) -> Option<ZoneId> {
        let &(resets, pos) = self.by_reset.first()?;
        self.by_reset.remove(&(resets, pos));
        let (zone, _) = self.slots.swap_remove(pos as usize);
        if (pos as usize) < self.slots.len() {
            let (_, moved) = self.slots[pos as usize];
            self.by_reset.remove(&(moved, self.slots.len() as u32));
            self.by_reset.insert((moved, pos));
        }
        Some(zone)
    }

    /// Validates the index against its own slots and against the device,
    /// and that the indexed pick equals the linear scan's.
    fn check<D: ZonedDevice>(&self, dev: &D) {
        assert_eq!(self.slots.len(), self.by_reset.len(), "free index size");
        for (pos, &(zone, resets)) in self.slots.iter().enumerate() {
            assert!(
                self.by_reset.contains(&(resets, pos as u32)),
                "free slot {pos} (zone {zone:?}) missing from index"
            );
            assert_eq!(
                dev.zone(zone).map(|z| z.resets()).unwrap_or(u64::MAX),
                resets,
                "recorded resets stale for pooled zone {zone:?}"
            );
        }
        let linear = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|&(_, &(_, resets))| resets)
            .map(|(pos, _)| pos as u32);
        let indexed = self.by_reset.first().map(|&(_, pos)| pos);
        assert_eq!(linear, indexed, "indexed pick diverges from scan");
    }
}

/// Counters for the emulation layer.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmuStats {
    /// Host page writes accepted.
    pub host_writes: u64,
    /// Host page reads served.
    pub host_reads: u64,
    /// Live pages relocated by host GC.
    pub relocated: u64,
    /// Zones reset by host GC.
    pub resets: u64,
    /// Reclaim passes executed.
    pub reclaim_runs: u64,
    /// Appends re-driven after transient program failures.
    pub program_redrives: u64,
    /// Power-loss replays completed.
    pub replays: u64,
    /// Pages scanned (read) across all replays to rebuild the map.
    pub replay_pages_scanned: u64,
}

/// How host writes are assigned to zone streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StreamMap {
    /// One stream: pure log order.
    Single,
    /// Two streams split by per-LBA write frequency.
    HotCold {
        /// Heat at which an LBA is routed to the hot stream.
        threshold: u8,
    },
    /// One stream per equal-sized logical region (tenant ranges).
    Region {
        /// Number of regions.
        regions: u32,
    },
    /// The caller supplies the stream per write (application hints, like
    /// NVMe write streams but host-enforced).
    Hinted {
        /// Number of streams.
        streams: u32,
    },
}

/// A block device emulated on top of a zoned device.
///
/// Generic over the substrate: the flash-timed simulator
/// ([`ZnsDevice`], the default) or bh-zbd's durable file-backed
/// emulator — anything implementing [`ZonedDevice`]. The emulation
/// logic is identical on every substrate, which is what lets
/// `expt_backend` check the two against each other.
///
/// # Examples
///
/// ```
/// use bh_host::{BlockEmu, ReclaimPolicy};
/// use bh_zns::{ZnsConfig, ZnsDevice};
/// use bh_flash::{FlashConfig, Geometry};
/// use bh_metrics::Nanos;
///
/// let dev = ZnsDevice::new(ZnsConfig::new(
///     FlashConfig::tlc(Geometry::small_test()), 4)).unwrap();
/// let mut emu = BlockEmu::new(dev, 2, ReclaimPolicy::Immediate);
/// let (stamp, done) = {
///     let done = emu.write(3, Nanos::ZERO).unwrap();
///     emu.read(3, done).unwrap()
/// };
/// assert!(stamp > 0);
/// # let _ = done;
/// ```
pub struct BlockEmu<D: ZonedDevice = ZnsDevice> {
    dev: D,
    /// LBA → zoned location.
    map: Vec<Option<ZonedLocation>>,
    /// Reverse map: per zone, per offset, the owning LBA (if live).
    rmap: Vec<Vec<Option<u64>>>,
    /// Live page count per zone.
    live: Vec<u64>,
    /// Current data frontiers, one per write stream. A single stream by
    /// default; hot/cold separation uses two; region placement uses one
    /// per region.
    frontiers: Vec<Option<ZoneId>>,
    /// How writes are mapped to streams.
    streams: StreamMap,
    /// Per-LBA saturating write counters for hot/cold classification;
    /// empty unless hot/cold mode is on.
    heat: Vec<u8>,
    /// Host writes since the last heat decay.
    writes_since_decay: u64,
    /// One-shot stream override used by [`BlockEmu::write_hinted`].
    hint: Option<usize>,
    /// Reclaim stops once this many zones are free (except the Watermark
    /// policy, which uses its own high mark). Prevents pathological
    /// reclaim of nearly-full-live zones, which would burn erase cycles.
    free_target: u32,
    /// Zones held back from the exported capacity; the IdleOnly policy
    /// cleans ahead up to this many free zones during quiet periods.
    reserve_zones: u32,
    /// Current relocation frontier.
    gc_zone: Option<ZoneId>,
    /// Empty zones available for allocation, ordered for wear leveling.
    free: ZoneFreeList,
    /// Full zones keyed `(garbage, zone)`: victim selection walks this
    /// set from the top instead of scanning every zone. Kept in sync by
    /// [`BlockEmu::sync_victim_index`] at every transition that changes a
    /// zone's Full-ness or garbage count.
    full_by_garbage: BTreeSet<(u64, u32)>,
    /// Per zone, the garbage key currently in `full_by_garbage` (`None`
    /// when the zone is not indexed, i.e. not Full).
    full_key: Vec<Option<u64>>,
    /// Reusable scratch for [`BlockEmu::reclaim_step`]'s live listing.
    reloc_entries: Vec<(u64, u64)>,
    /// Reusable scratch for the per-chunk simple-copy source list.
    reloc_sources: Vec<(ZoneId, u64)>,
    /// Per zone, per offset: the `(lba, seq)` pair committed there — the
    /// contents of the zone summary the host writes out when a zone
    /// fills (the LFS segment-summary technique append-only zones make
    /// possible). Entries for *Full* zones model durable metadata and
    /// survive power loss; partial zones have no summary on media yet and
    /// must be scanned. Burned slots hold `None`.
    summary_log: Vec<Vec<Option<(u64, u64)>>>,
    policy: ReclaimPolicy,
    /// Instant of the most recent host I/O, for idle detection.
    last_io: Nanos,
    stamp_counter: u64,
    stats: EmuStats,
    tracer: Tracer,
    /// Live counter registry; emergency-reclaim bumps happen here, the
    /// rest of the stack observes through the cascaded handle.
    obs: Obs,
}

impl<D: ZonedDevice> BlockEmu<D> {
    /// Builds an emulated block device over `dev`, holding back
    /// `reserve_zones` zones of the namespace as relocation headroom
    /// (they are not part of the exported capacity).
    ///
    /// # Panics
    ///
    /// Panics if `reserve_zones` leaves no exported capacity.
    pub fn new(dev: D, reserve_zones: u32, policy: ReclaimPolicy) -> Self {
        let zones = dev.num_zones();
        assert!(
            reserve_zones < zones,
            "reserve {reserve_zones} must leave exported zones"
        );
        let zone_cap = dev.zone_capacity();
        let logical = (zones - reserve_zones) as u64 * zone_cap;
        let mut free = ZoneFreeList::default();
        for z in dev.zone_report() {
            free.push(z.id(), z.resets());
        }
        let rmap: Vec<Vec<Option<u64>>> = dev
            .zone_report()
            .iter()
            .map(|z| vec![None; z.capacity() as usize])
            .collect();
        let summary_log = dev
            .zone_report()
            .iter()
            .map(|z| vec![None; z.capacity() as usize])
            .collect();
        let live = vec![0; zones as usize];
        BlockEmu {
            dev,
            map: vec![None; logical as usize],
            rmap,
            live,
            frontiers: vec![None],
            streams: StreamMap::Single,
            heat: Vec::new(),
            writes_since_decay: 0,
            hint: None,
            // Lazy by default: reclaim only replenishes a small handful
            // of free zones, letting garbage accumulate so victims are
            // mostly dead. Eager space-keeping is expressed with the
            // Watermark policy's high mark instead.
            free_target: 2,
            reserve_zones,
            gc_zone: None,
            free,
            full_by_garbage: BTreeSet::new(),
            full_key: vec![None; zones as usize],
            reloc_entries: Vec::new(),
            reloc_sources: Vec::new(),
            summary_log,
            policy,
            last_io: Nanos::ZERO,
            stamp_counter: 0,
            stats: EmuStats::default(),
            tracer: Tracer::disabled(),
            obs: Obs::disabled(),
        }
    }

    /// Installs a tracer, cascading it into the underlying ZNS device so
    /// one ring receives host reclaim events and device events in order.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.dev.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// The tracer currently installed (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Installs a live counter registry, cascading it into the ZNS
    /// device (and flash) beneath so one handle observes the stack.
    pub fn set_obs(&mut self, obs: Obs) {
        self.dev.set_obs(obs.clone());
        self.obs = obs;
    }

    /// The registry handle in use (disabled by default).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Installs a transient-fault plan on the flash under the ZNS device.
    pub fn install_faults(&mut self, cfg: bh_faults::FaultConfig) {
        self.dev.install_faults(cfg);
    }

    /// True when the zone can accept another append right now.
    fn zone_writable(&self, z: ZoneId) -> bool {
        self.dev
            .zone(z)
            .map(|zz| {
                zz.remaining() > 0
                    && !matches!(
                        zz.state(),
                        ZoneState::Full | ZoneState::ReadOnly | ZoneState::Offline
                    )
            })
            .unwrap_or(false)
    }

    /// Enables hot/cold stream separation (§4.1's application-aware
    /// placement, applied at the block layer): LBAs overwritten at least
    /// `threshold` times since the last decay are routed to a dedicated
    /// hot zone stream, so frequently dying data shares zones and whole
    /// zones expire together. Returns `self` for builder-style use.
    pub fn with_hot_cold(mut self, threshold: u8) -> Self {
        assert!(threshold > 0, "threshold 0 means disabled; use new()");
        self.streams = StreamMap::HotCold { threshold };
        self.frontiers = vec![None, None];
        self.heat = vec![0; self.map.len()];
        self
    }

    /// Enables caller-hinted stream separation: writes carry an explicit
    /// stream id (see [`BlockEmu::write_hinted`]) — the application-
    /// knowledge placement of §4.1, with no inference involved.
    pub fn with_hinted_streams(mut self, streams: u32) -> Self {
        assert!(streams > 0, "need at least one stream");
        self.streams = StreamMap::Hinted { streams };
        self.frontiers = vec![None; streams as usize];
        self
    }

    /// Enables region-based stream separation: the logical space is split
    /// into `regions` equal ranges, each with its own zone stream. This
    /// is the placement a host applies when it knows which tenant or
    /// application owns which range (§4.1: flash caches keeping "several
    /// buckets of objects, where each bucket should be written to the
    /// same erasure block").
    pub fn with_regions(mut self, regions: u32) -> Self {
        assert!(regions > 0, "need at least one region");
        self.streams = StreamMap::Region { regions };
        self.frontiers = vec![None; regions as usize];
        self
    }

    /// Exported logical capacity in pages.
    pub fn capacity_pages(&self) -> u64 {
        self.map.len() as u64
    }

    /// Number of configured write streams (data frontiers).
    pub fn streams(&self) -> u32 {
        self.frontiers.len() as u32
    }

    /// True when the emulator is in caller-hinted stream mode (writes may
    /// carry explicit stream ids; see [`BlockEmu::write_hinted`]).
    pub fn is_hinted(&self) -> bool {
        matches!(self.streams, StreamMap::Hinted { .. })
    }

    /// Layer counters.
    pub fn stats(&self) -> &EmuStats {
        &self.stats
    }

    /// The underlying zoned device (for substrate-level statistics).
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// Host-level write amplification: `(host writes + relocations) /
    /// host writes`. Equals the flash-level WA because zones are only
    /// erased when fully dead.
    ///
    /// Returns `1.0` when nothing was written at all and `f64::INFINITY`
    /// when relocation work happened without a single host write (the same
    /// convention as `FlashStats::write_amplification`).
    pub fn write_amplification(&self) -> f64 {
        if self.stats.host_writes == 0 {
            return if self.stats.relocated == 0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        (self.stats.host_writes + self.stats.relocated) as f64 / self.stats.host_writes as f64
    }

    /// Free (empty, unallocated) zones remaining.
    pub fn free_zones(&self) -> u32 {
        self.free.len() as u32
    }

    fn check_lba(&self, lba: u64) -> Result<()> {
        if lba < self.capacity_pages() {
            Ok(())
        } else {
            Err(HostError::LbaOutOfRange {
                lba,
                capacity: self.capacity_pages(),
            })
        }
    }

    fn alloc_zone(&mut self) -> Result<ZoneId> {
        // Host-side zone wear leveling: hand out the least-reset zone.
        // (On ZNS, balancing erases across zones is host responsibility.)
        self.free.pop_least_reset().ok_or(HostError::NoFreeZone)
    }

    /// Re-derives zone `z`'s entry in the victim index from device state.
    /// Must run after every transition that can change the zone's
    /// Full-ness or its garbage count: appends, burned slots, relocation
    /// chunks, unmapping, finish, and reset.
    fn sync_victim_index(&mut self, z: ZoneId) {
        let zi = z.0 as usize;
        let fresh = match self.dev.zone(z) {
            Ok(zone) if zone.state() == ZoneState::Full => {
                Some(zone.write_pointer() - self.live[zi])
            }
            _ => None,
        };
        if self.full_key[zi] != fresh {
            if let Some(old) = self.full_key[zi] {
                self.full_by_garbage.remove(&(old, z.0));
            }
            if let Some(garbage) = fresh {
                self.full_by_garbage.insert((garbage, z.0));
            }
            self.full_key[zi] = fresh;
        }
    }

    /// Reads logical page `lba`, issued at `now`.
    pub fn read(&mut self, lba: u64, now: Nanos) -> Result<(u64, Nanos)> {
        self.check_lba(lba)?;
        let loc = self.map[lba as usize].ok_or(HostError::Unmapped(lba))?;
        let (stamp, done) = self.dev.read(loc.zone, loc.offset, now)?;
        self.last_io = now;
        self.stats.host_reads += 1;
        Ok((stamp, done))
    }

    /// Writes logical page `lba` with an explicit stream hint (only
    /// meaningful in [`BlockEmu::with_hinted_streams`] mode, where it
    /// overrides the default stream).
    ///
    /// # Panics
    ///
    /// Panics if `stream` is out of range for the configured stream
    /// count.
    pub fn write_hinted(&mut self, lba: u64, stream: u32, now: Nanos) -> Result<Nanos> {
        assert!(
            (stream as usize) < self.frontiers.len(),
            "stream {stream} out of range"
        );
        self.hint = Some(stream as usize);
        let r = self.write(lba, now);
        self.hint = None;
        r
    }

    /// Writes logical page `lba`, issued at `now`. May trigger emergency
    /// reclaim when the zone pool is exhausted; policy-driven reclaim is
    /// the caller's job via [`BlockEmu::maybe_reclaim`].
    pub fn write(&mut self, lba: u64, now: Nanos) -> Result<Nanos> {
        self.check_lba(lba)?;
        // Emergency: the data path itself must not strand. Keep a free
        // zone in hand whenever reclaim can produce one. "No victim" is
        // not an error here — with space left, the write still proceeds.
        if self.free.len() <= 1 {
            self.obs.inc(Ctr::HostEmergencyReclaims);
            match self.reclaim_step(now, 1) {
                Ok(_) | Err(HostError::Unmapped(_)) | Err(HostError::NoFreeZone) => {}
                Err(e) => return Err(e),
            }
        }
        // Route the write to its stream: data that dies together shares
        // zones.
        let stream = if let Some(h) = self.hint {
            h
        } else {
            match self.streams {
                StreamMap::Single => 0,
                StreamMap::HotCold { threshold } => {
                    let h = &mut self.heat[lba as usize];
                    *h = h.saturating_add(1);
                    self.writes_since_decay += 1;
                    if self.writes_since_decay >= self.map.len() as u64 {
                        // Periodic decay keeps the classification adaptive.
                        for v in &mut self.heat {
                            *v /= 2;
                        }
                        self.writes_since_decay = 0;
                    }
                    usize::from(self.heat[lba as usize] >= threshold)
                }
                StreamMap::Region { regions } => {
                    (lba * regions as u64 / self.map.len() as u64) as usize
                }
                // Unhinted writes into hinted mode default to stream 0.
                StreamMap::Hinted { .. } => 0,
            }
        };
        self.stamp_counter += 1;
        let seq = self.stamp_counter;
        let mut redrives = 0u32;
        let (zone, offset, done) = loop {
            let zone = match self.frontiers[stream] {
                Some(z) if self.zone_writable(z) => z,
                _ => {
                    let z = match self.alloc_zone() {
                        Ok(z) => z,
                        // The emergency step above can itself be cut short
                        // by burns (its destination degraded mid-copy after
                        // taking the last free zone). A partially relocated
                        // victim is still a victim: reclaim again now and
                        // retry the allocation.
                        Err(HostError::NoFreeZone) => {
                            self.obs.inc(Ctr::HostEmergencyReclaims);
                            self.reclaim_step(now, 1).map_err(|e| match e {
                                HostError::Unmapped(_) => HostError::NoFreeZone,
                                e => e,
                            })?;
                            self.alloc_zone()?
                        }
                        Err(e) => return Err(e),
                    };
                    self.frontiers[stream] = Some(z);
                    if self.tracer.enabled() {
                        self.tracer.emit(
                            now,
                            HostEvent::ZoneAlloc {
                                class: stream as u32,
                                zone: z.0,
                            },
                        );
                    }
                    z
                }
            };
            match self.dev.append(zone, encode_oob(seq, lba), now) {
                Ok((offset, done)) => break (zone, offset, done),
                // A burned slot: retry at the advanced pointer. If the
                // burn filled or degraded the zone, the writable() gate
                // rotates the frontier on the next pass (and the burn may
                // have made the zone Full, so re-index it).
                Err(ZnsError::ProgramFailure { .. }) => {
                    redrives += 1;
                    self.sync_victim_index(zone);
                }
                Err(e) => return Err(e.into()),
            }
        };
        if redrives > 0 {
            self.stats.program_redrives += u64::from(redrives);
            if self.tracer.enabled() {
                self.tracer.emit(
                    done,
                    FaultEvent::Redrive {
                        layer: "blockemu",
                        attempts: redrives,
                    },
                );
            }
        }
        let new_loc = ZonedLocation { zone, offset };
        if let Some(old) = self.map[lba as usize].replace(new_loc) {
            self.unbind_reverse(old);
        }
        self.rmap[zone.0 as usize][offset as usize] = Some(lba);
        self.summary_log[zone.0 as usize][offset as usize] = Some((lba, seq));
        self.live[zone.0 as usize] += 1;
        if self.dev.zone(zone)?.state() == ZoneState::Full {
            self.frontiers[stream] = None;
        }
        self.sync_victim_index(zone);
        self.last_io = now;
        self.stats.host_writes += 1;
        Ok(done)
    }

    /// Deallocates logical page `lba` (TRIM). Metadata-only.
    pub fn trim(&mut self, lba: u64) -> Result<()> {
        self.check_lba(lba)?;
        if let Some(old) = self.map[lba as usize].take() {
            self.unbind_reverse(old);
        }
        Ok(())
    }

    fn unbind_reverse(&mut self, loc: ZonedLocation) {
        self.rmap[loc.zone.0 as usize][loc.offset as usize] = None;
        self.live[loc.zone.0 as usize] -= 1;
        // One more dead page in that zone: more garbage if it is Full.
        self.sync_victim_index(loc.zone);
    }

    /// Writable space remaining across the data frontiers.
    fn current_remaining(&self) -> u64 {
        self.frontiers
            .iter()
            .flatten()
            .filter_map(|&z| self.dev.zone(z).ok())
            .map(|z| z.remaining())
            .sum()
    }

    /// Runs policy-driven reclaim at `now`. Call between I/Os (or from an
    /// idle loop); returns the number of zones reclaimed and the instant
    /// the last reclaim operation completes (`now` if none ran).
    ///
    /// Each policy has its own trigger and stop level:
    /// - `Immediate` keeps a small free pool topped up, whenever needed.
    /// - `IdleOnly` waits for a quiet period, then cleans ahead up to the
    ///   full reserve so bursts run without reclaim in their way.
    /// - `Watermark` uses its low/high hysteresis band.
    pub fn maybe_reclaim(&mut self, now: Nanos) -> Result<(u32, Nanos)> {
        let free = self.free.len() as u32;
        let emergency = free <= 1;
        let (gate, target) = match self.policy {
            ReclaimPolicy::Immediate => (free < self.free_target, self.free_target),
            ReclaimPolicy::IdleOnly { min_idle } => (
                now.saturating_sub(self.last_io) >= min_idle,
                self.reserve_zones.max(self.free_target),
            ),
            ReclaimPolicy::Watermark {
                low_zones,
                high_zones,
            } => (free <= low_zones, high_zones),
        };
        if self.tracer.enabled() {
            self.tracer.emit(
                now,
                HostEvent::ReclaimGate {
                    policy: self.policy.name(),
                    free_zones: free,
                    ran: gate || emergency,
                },
            );
        }
        if !gate && !emergency {
            return Ok((0, now));
        }
        if emergency && !gate {
            // The policy did not want to run; free-zone exhaustion forced
            // it anyway.
            self.obs.inc(Ctr::HostEmergencyReclaims);
        }
        self.stats.reclaim_runs += 1;
        let min_garbage = self.policy_min_garbage();
        let mut reclaimed = 0;
        let mut t = now;
        while (self.free.len() as u32) < target {
            match self.reclaim_step(t, min_garbage) {
                Ok(done) => {
                    reclaimed += 1;
                    t = done;
                }
                Err(HostError::NoFreeZone) | Err(HostError::Unmapped(_)) => break,
                Err(e) => return Err(e),
            }
        }
        Ok((reclaimed, t))
    }

    /// True when a feasible reclaim victim exists at the given garbage
    /// threshold (used by tests and ad-hoc tooling).
    pub fn has_victim(&self, min_garbage: u64) -> bool {
        self.victim(min_garbage).is_some()
    }

    /// Cross-checks the incremental hot-path indexes against from-scratch
    /// scans of device state, and the indexed victim pick against the
    /// historical full-scan selection. Test/diagnostic hook for the
    /// oracle property tests; O(zones), so keep it off hot paths.
    ///
    /// # Panics
    ///
    /// Panics on any divergence.
    pub fn verify_hotpath_invariants(&self) {
        let mut expect = BTreeSet::new();
        for z in self.dev.zone_report() {
            let live = self.live[z.id().0 as usize];
            let row_live = self.rmap[z.id().0 as usize].iter().flatten().count() as u64;
            assert_eq!(live, row_live, "live count for zone {:?}", z.id());
            if z.state() == ZoneState::Full {
                expect.insert((z.write_pointer() - live, z.id().0));
            }
        }
        assert_eq!(
            expect, self.full_by_garbage,
            "victim index diverged from a device scan"
        );
        self.free.check(&self.dev);
        // The indexed pick must equal the historical scan's for both the
        // policy threshold and the emergency threshold.
        for min_garbage in [self.policy_min_garbage(), 1] {
            let room = self.relocation_room() + self.current_remaining();
            let scan = self
                .dev
                .zone_report()
                .iter()
                .filter(|z| z.state() == ZoneState::Full)
                .filter(|z| !self.frontiers.contains(&Some(z.id())) && Some(z.id()) != self.gc_zone)
                .map(|z| {
                    let live = self.live[z.id().0 as usize];
                    (z.id(), z.write_pointer() - live, live)
                })
                .filter(|&(_, garbage, live)| garbage >= min_garbage && live <= room)
                .max_by_key(|&(_, garbage, _)| garbage)
                .map(|(id, _, _)| id);
            assert_eq!(
                scan,
                self.victim(min_garbage),
                "victim pick diverged at min_garbage {min_garbage}"
            );
        }
    }

    /// Minimum garbage for non-emergency reclaim: an eighth of a zone.
    /// Compacting nearly-full-live zones burns erase cycles and copies
    /// for almost no space, so the policy path refuses them.
    fn policy_min_garbage(&self) -> u64 {
        (self.dev.zone_capacity() / 8).max(1)
    }

    /// Pages writable for relocation without consuming the data frontier:
    /// the GC frontier's remainder plus whole free zones.
    fn relocation_room(&self) -> u64 {
        let gc_room = self
            .gc_zone
            .and_then(|z| self.dev.zone(z).ok())
            .map(|z| z.remaining())
            .unwrap_or(0);
        gc_room + self.free.len() as u64 * self.dev.zone_capacity()
    }

    /// The best *feasible* victim: a full zone with the most garbage whose
    /// survivors fit in the relocation room (falling back to the data
    /// frontier's remainder in a pinch).
    fn victim(&self, min_garbage: u64) -> Option<ZoneId> {
        let room = self.relocation_room() + self.current_remaining();
        // Walk Full zones from most garbage down. `(garbage, zone)` in
        // descending order replays the historical full scan's
        // `max_by_key(garbage)` exactly — the last maximum in zone-id
        // order — and the first feasible zone it meets is that maximum.
        // Infeasible zones (a current frontier, or survivors exceeding
        // the relocation room) are skipped as the scan's filters did.
        for &(garbage, id) in self.full_by_garbage.iter().rev() {
            if garbage < min_garbage {
                break;
            }
            let z = ZoneId(id);
            if self.frontiers.contains(&Some(z)) || Some(z) == self.gc_zone {
                continue;
            }
            if self.live[id as usize] <= room {
                return Some(z);
            }
        }
        None
    }

    /// Reclaims one victim zone: simple-copies its live pages to the GC
    /// frontier, resets it. Returns the completion instant.
    ///
    /// # Errors
    ///
    /// Returns [`HostError::Unmapped(0)`] as a sentinel when no victim
    /// with garbage exists (mapped to "nothing to do" by callers).
    fn reclaim_step(&mut self, now: Nanos, min_garbage: u64) -> Result<Nanos> {
        let _p = bh_obs::phase!("reclaim");
        let victim = self.victim(min_garbage).ok_or(HostError::Unmapped(0))?;
        // Collect live (offset, lba) pairs in offset order, reusing the
        // scratch buffers so steady-state reclaim allocates nothing.
        // (Early error returns drop them; the next call re-takes empties.)
        let mut entries = std::mem::take(&mut self.reloc_entries);
        let mut sources = std::mem::take(&mut self.reloc_sources);
        entries.clear();
        entries.extend(
            self.rmap[victim.0 as usize]
                .iter()
                .enumerate()
                .filter_map(|(off, lba)| lba.map(|l| (off as u64, l))),
        );
        let span = self.tracer.begin_span();
        if self.tracer.enabled() {
            self.tracer.emit_span(
                now,
                span,
                HostEvent::ReclaimBegin {
                    victim: victim.0,
                    live: entries.len() as u64,
                },
            );
        }
        let mut t = now;
        // Relocate in chunks that fit the GC frontier.
        let mut idx = 0;
        while idx < entries.len() {
            let gc = match self.gc_zone {
                Some(z) if self.zone_writable(z) => z,
                _ => match self.alloc_zone() {
                    Ok(z) => {
                        self.gc_zone = Some(z);
                        z
                    }
                    // Last resort: overflow survivors into the data
                    // frontier (mixing GC and host data costs placement
                    // quality, not correctness).
                    Err(HostError::NoFreeZone) => {
                        let fallback = self
                            .frontiers
                            .iter()
                            .flatten()
                            .copied()
                            .find(|&c| self.zone_writable(c));
                        match fallback {
                            Some(c) => c,
                            None => return Err(HostError::NoFreeZone),
                        }
                    }
                    Err(e) => return Err(e),
                },
            };
            let room = self.dev.zone(gc)?.remaining() as usize;
            let chunk = &entries[idx..(idx + room).min(entries.len())];
            sources.clear();
            sources.extend(chunk.iter().map(|&(off, _)| (victim, off)));
            let (placed, done) = match self.dev.simple_copy(&sources, gc, t) {
                Ok(r) => r,
                // Burns consumed the destination mid-copy. Pages already
                // copied stay unreferenced (the map still points at the
                // victim) and die as garbage in the destination. Rotate
                // to a fresh destination and redo the chunk.
                Err(ZnsError::ProgramFailure { .. }) | Err(ZnsError::ZoneFull(_)) => {
                    if self.gc_zone == Some(gc) {
                        self.gc_zone = None;
                    }
                    for f in &mut self.frontiers {
                        if *f == Some(gc) {
                            *f = None;
                        }
                    }
                    // Burns may have filled the destination; re-index it.
                    self.sync_victim_index(gc);
                    self.stats.program_redrives += 1;
                    if self.tracer.enabled() {
                        self.tracer.emit(
                            t,
                            FaultEvent::Redrive {
                                layer: "blockemu-gc",
                                attempts: 1,
                            },
                        );
                    }
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            t = done;
            for (i, &(off, lba)) in chunk.iter().enumerate() {
                let new_loc = ZonedLocation {
                    zone: gc,
                    offset: placed[i],
                };
                // The old location dies with the victim reset; update maps
                // chunk by chunk so an interrupted reclaim never leaves a
                // stale reverse entry behind.
                let old = self.map[lba as usize].replace(new_loc);
                debug_assert_eq!(
                    old.map(|o| o.zone),
                    Some(victim),
                    "relocated page must have lived in the victim"
                );
                // The relocated page keeps its original sequence number:
                // simple-copy moves the stamp as-is, so replay must see
                // the same (lba, seq) pair at the new location.
                let seq = self.summary_log[victim.0 as usize][off as usize]
                    .map(|(_, s)| s)
                    .unwrap_or(0);
                self.rmap[victim.0 as usize][off as usize] = None;
                self.rmap[gc.0 as usize][new_loc.offset as usize] = Some(lba);
                self.summary_log[gc.0 as usize][new_loc.offset as usize] = Some((lba, seq));
                self.live[gc.0 as usize] += 1;
            }
            self.live[victim.0 as usize] -= chunk.len() as u64;
            if self.dev.zone(gc)?.state() == ZoneState::Full {
                if self.gc_zone == Some(gc) {
                    self.gc_zone = None;
                }
                for f in &mut self.frontiers {
                    if *f == Some(gc) {
                        *f = None;
                    }
                }
            }
            idx += chunk.len();
            self.stats.relocated += chunk.len() as u64;
            // The destination gained live pages (and may now be Full);
            // the victim lost them.
            self.sync_victim_index(gc);
            self.sync_victim_index(victim);
        }
        debug_assert_eq!(self.live[victim.0 as usize], 0);
        let done = self.dev.reset(victim, t)?;
        self.summary_log[victim.0 as usize].fill(None);
        self.sync_victim_index(victim);
        // A reset that retires the zone's last blocks leaves it Offline;
        // only a zone that came back Empty returns to the pool.
        let resets = self.dev.zone(victim)?.resets();
        if self.dev.zone(victim)?.state() == ZoneState::Empty {
            self.free.push(victim, resets);
        }
        self.stats.resets += 1;
        if self.tracer.enabled() {
            self.tracer.emit_span(
                done,
                span,
                HostEvent::ReclaimEnd {
                    victim: victim.0,
                    relocated: entries.len() as u64,
                },
            );
        }
        self.reloc_entries = entries;
        self.reloc_sources = sources;
        Ok(done)
    }

    /// Models a power loss and host restart: all volatile host state (the
    /// LBA map, frontiers, heat counters) is gone and gets rebuilt from
    /// what is durable.
    ///
    /// Zone state and write pointers survive on a ZNS device, and the
    /// host's append-only placement makes zone summaries possible: when a
    /// zone fills, its final append carries a listing of every `(lba,
    /// seq)` committed to the zone, so recovering a Full zone costs one
    /// page read instead of a scan. Only zones that were still partially
    /// written at the loss must be scanned below their write pointer
    /// (burned slots are skipped). The conventional FTL can do neither:
    /// with in-place-overwrite semantics there is no final write to hang
    /// a summary on, so it scans every written page (compare
    /// `ConvSsd::power_cycle`).
    ///
    /// Returns the instant recovery completes and the number of pages
    /// scanned.
    ///
    /// # Errors
    ///
    /// Propagates device errors from the recovery reads.
    pub fn power_cycle(&mut self, now: Nanos) -> Result<(Nanos, u64)> {
        let start = self.dev.power_cycle(now);
        let logical = self.map.len();
        self.map = vec![None; logical];
        for row in &mut self.rmap {
            row.fill(None);
        }
        self.live.fill(0);
        self.frontiers = vec![None; self.frontiers.len()];
        self.heat.fill(0);
        self.writes_since_decay = 0;
        self.hint = None;
        self.gc_zone = None;
        self.free.clear();
        let mut best: Vec<Option<(u64, ZonedLocation)>> = vec![None; logical];
        let mut consider = |lba: u64, seq: u64, loc: ZonedLocation| {
            let slot = &mut best[lba as usize];
            if slot.map(|(s, _)| seq > s).unwrap_or(true) {
                *slot = Some((seq, loc));
            }
        };
        let mut done = start;
        let mut scanned = 0u64;
        let mut max_seq = 0u64;
        let zone_ids: Vec<ZoneId> = self.dev.zone_report().iter().map(|z| z.id()).collect();
        for id in zone_ids {
            let (state, wp, resets) = {
                let z = self.dev.zone(id)?;
                (z.state(), z.write_pointer(), z.resets())
            };
            match state {
                ZoneState::Empty => {
                    self.summary_log[id.0 as usize].fill(None);
                    self.free.push(id, resets);
                }
                ZoneState::Offline => self.summary_log[id.0 as usize].fill(None),
                ZoneState::Full => {
                    // Durable zone summary: one read recovers the listing.
                    for off in 0..wp {
                        match self.dev.read(id, off, start) {
                            Ok((_, d)) => {
                                done = done.max(d);
                                break;
                            }
                            Err(ZnsError::MediaError { .. }) => continue,
                            Err(e) => return Err(e.into()),
                        }
                    }
                    scanned += 1;
                    for (off, entry) in self.summary_log[id.0 as usize].iter().enumerate() {
                        if let Some((lba, seq)) = *entry {
                            max_seq = max_seq.max(seq);
                            consider(
                                lba,
                                seq,
                                ZonedLocation {
                                    zone: id,
                                    offset: off as u64,
                                },
                            );
                        }
                    }
                }
                // Closed or ReadOnly: partially written, no summary on
                // media yet — scan everything below the write pointer.
                // (Open states cannot appear: the device closed them.)
                _ => {
                    self.summary_log[id.0 as usize].fill(None);
                    for off in 0..wp {
                        scanned += 1;
                        match self.dev.read(id, off, start) {
                            Ok((stamp, d)) => {
                                done = done.max(d);
                                let (seq, lba) = decode_oob(stamp);
                                self.summary_log[id.0 as usize][off as usize] = Some((lba, seq));
                                max_seq = max_seq.max(seq);
                                consider(
                                    lba,
                                    seq,
                                    ZonedLocation {
                                        zone: id,
                                        offset: off,
                                    },
                                );
                            }
                            // A burned slot left by a program failure.
                            Err(ZnsError::MediaError { .. }) => {}
                            Err(e) => return Err(e.into()),
                        }
                    }
                }
            }
        }
        let mut recovered = 0u64;
        for (lba, slot) in best.iter().enumerate() {
            if let Some((_, loc)) = slot {
                self.map[lba] = Some(*loc);
                self.rmap[loc.zone.0 as usize][loc.offset as usize] = Some(lba as u64);
                self.live[loc.zone.0 as usize] += 1;
                recovered += 1;
            }
        }
        self.stamp_counter = max_seq;
        // Re-adopt partial zones as write frontiers; finish the surplus so
        // their garbage stays reclaimable by victim selection.
        let closed: Vec<ZoneId> = self
            .dev
            .zone_report()
            .iter()
            .filter(|z| z.state() == ZoneState::Closed)
            .map(|z| z.id())
            .collect();
        let mut closed = closed.into_iter();
        for f in &mut self.frontiers {
            match closed.next() {
                Some(z) => *f = Some(z),
                None => break,
            }
        }
        for z in closed {
            self.dev.finish(z)?;
        }
        // Rebuild the victim index last: `finish` above turns surplus
        // partial zones Full, and the live counters are now final.
        self.full_by_garbage.clear();
        self.full_key.fill(None);
        let all: Vec<ZoneId> = self.dev.zone_report().iter().map(|z| z.id()).collect();
        for z in all {
            self.sync_victim_index(z);
        }
        self.last_io = done;
        self.stats.replays += 1;
        self.stats.replay_pages_scanned += scanned;
        if self.tracer.enabled() {
            self.tracer.emit(
                done,
                FaultEvent::Replay {
                    layer: "blockemu",
                    scanned,
                    recovered,
                },
            );
        }
        Ok((done, scanned))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_flash::{FlashConfig, Geometry};
    use bh_zns::ZnsConfig;

    fn emu(policy: ReclaimPolicy) -> BlockEmu {
        let mut cfg = ZnsConfig::new(FlashConfig::tlc(Geometry::small_test()), 4);
        cfg.max_active_zones = 8;
        cfg.max_open_zones = 8;
        let dev = ZnsDevice::new(cfg).unwrap();
        BlockEmu::new(dev, 2, policy)
    }

    #[test]
    fn capacity_excludes_reserve() {
        let e = emu(ReclaimPolicy::Immediate);
        // 8 zones x 64 pages, 2 reserved: 384 exported.
        assert_eq!(e.capacity_pages(), 384);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut e = emu(ReclaimPolicy::Immediate);
        let done = e.write(42, Nanos::ZERO).unwrap();
        let (stamp, _) = e.read(42, done).unwrap();
        // Stamps carry (seq, lba) out-of-band metadata for replay.
        assert_eq!(decode_oob(stamp), (1, 42));
        assert_eq!(e.read(43, done).unwrap_err(), HostError::Unmapped(43));
    }

    #[test]
    fn overwrites_survive_reclaim() {
        let mut e = emu(ReclaimPolicy::Immediate);
        let cap = e.capacity_pages();
        let mut t = Nanos::ZERO;
        let mut expect = vec![0u64; cap as usize];
        for lba in 0..cap {
            t = e.write(lba, t).unwrap();
        }
        let mut x = 5u64;
        for i in 0..3 * cap {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let lba = x % cap;
            t = e.write(lba, t).unwrap();
            if i % 64 == 0 {
                t = e.maybe_reclaim(t).unwrap().1;
            }
        }
        // Find current stamps by reading everything.
        for lba in 0..cap {
            let (stamp, done) = e.read(lba, t).unwrap();
            expect[lba as usize] = stamp;
            t = done;
        }
        // One more reclaim pass, then verify stability.
        t = e.maybe_reclaim(t).unwrap().1;
        for lba in 0..cap {
            let (stamp, done) = e.read(lba, t).unwrap();
            assert_eq!(stamp, expect[lba as usize], "LBA {lba}");
            t = done;
        }
        assert!(e.stats().resets > 0, "reclaim never reset a zone");
        assert!(e.write_amplification() >= 1.0);
    }

    #[test]
    fn trim_makes_whole_zone_garbage() {
        // Watermark with a high mark at the zone count: reclaim tops the
        // pool back up as soon as the low mark is crossed.
        let mut e = emu(ReclaimPolicy::Watermark {
            low_zones: 7,
            high_zones: 8,
        });
        let mut t = Nanos::ZERO;
        // Fill one full zone's worth (64 pages).
        for lba in 0..64 {
            t = e.write(lba, t).unwrap();
        }
        for lba in 0..64 {
            e.trim(lba).unwrap();
        }
        let (reclaimed, _) = e.maybe_reclaim(t).unwrap();
        assert!(reclaimed >= 1);
        // Pure-garbage reclaim relocates nothing.
        assert_eq!(e.stats().relocated, 0);
    }

    #[test]
    fn idle_policy_defers_reclaim_under_load() {
        // Reserve 3 zones so the idle clean-ahead target is visible.
        let mut cfg = ZnsConfig::new(FlashConfig::tlc(Geometry::small_test()), 4);
        cfg.max_active_zones = 8;
        cfg.max_open_zones = 8;
        let mut e = BlockEmu::new(
            ZnsDevice::new(cfg).unwrap(),
            3,
            ReclaimPolicy::IdleOnly {
                min_idle: Nanos::from_millis(5),
            },
        );
        let cap = e.capacity_pages();
        let mut t = Nanos::ZERO;
        for lba in 0..cap {
            t = e.write(lba, t).unwrap();
        }
        // Overwrite one zone's worth: garbage exists, free pool shrinks.
        for lba in 0..64 {
            t = e.write(lba, t).unwrap();
        }
        // Immediately after I/O: not idle, no reclaim.
        let (n, _) = e.maybe_reclaim(t).unwrap();
        assert_eq!(n, 0);
        // After a quiet period: reclaim cleans ahead.
        let (n, _) = e.maybe_reclaim(t + Nanos::from_millis(10)).unwrap();
        assert!(n > 0);
    }

    #[test]
    fn lba_bounds_enforced() {
        let mut e = emu(ReclaimPolicy::Immediate);
        let cap = e.capacity_pages();
        assert!(matches!(
            e.write(cap, Nanos::ZERO),
            Err(HostError::LbaOutOfRange { .. })
        ));
    }

    #[test]
    fn hot_cold_separation_cuts_wa_under_skew() {
        // Hotspot traffic: 80% of writes hit 10% of the space. With
        // separation, hot zones die wholesale; without, survivors must be
        // copied.
        let run = |hot_cold: bool| -> f64 {
            let mut cfg = ZnsConfig::new(FlashConfig::tlc(Geometry::experiment(8)), 4);
            cfg.max_active_zones = 14;
            cfg.max_open_zones = 14;
            let dev = ZnsDevice::new(cfg).unwrap();
            // 64 zones of 1024 pages, 12.5% reserve: enough slack that
            // garbage can age, which is what placement exploits.
            let mut e = BlockEmu::new(dev, 8, ReclaimPolicy::Immediate);
            if hot_cold {
                e = e.with_hot_cold(2);
            }
            let cap = e.capacity_pages();
            let mut t = Nanos::ZERO;
            for lba in 0..cap {
                t = e.write(lba, t).unwrap();
            }
            let mut x = 77u64;
            for _ in 0..6 * cap {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let lba = if x % 10 < 9 { x % (cap / 20) } else { x % cap };
                t = e.write(lba, t).unwrap();
                t = e.maybe_reclaim(t).unwrap().1;
            }
            e.write_amplification()
        };
        let blind = run(false);
        let separated = run(true);
        // Frequency-based detection is the weakest placement signal
        // (§4.1 ranks explicit knowledge above inference); expect a
        // modest but real improvement.
        assert!(
            separated < blind,
            "hot/cold separation should not hurt WA: blind {blind:.2}, separated {separated:.2}"
        );
    }

    #[test]
    fn region_streams_slash_wa_for_multi_tenant_churn() {
        // Four tenants, each overwriting its own quarter circularly at a
        // different rate. Region streams give each tenant its own zones,
        // which then die wholesale at the tenant's wrap period.
        let run = |regions: bool| -> f64 {
            let mut cfg = ZnsConfig::new(FlashConfig::tlc(Geometry::experiment(8)), 4);
            cfg.max_active_zones = 14;
            cfg.max_open_zones = 14;
            let dev = ZnsDevice::new(cfg).unwrap();
            let mut e = BlockEmu::new(dev, 8, ReclaimPolicy::Immediate);
            if regions {
                e = e.with_regions(4);
            }
            let cap = e.capacity_pages();
            let region = cap / 4;
            let mut t = Nanos::ZERO;
            for lba in 0..cap {
                t = e.write(lba, t).unwrap();
            }
            // Tenant k writes every k+1 rounds: four distinct lifetimes.
            let mut cursors = [0u64; 4];
            for round in 0..6 * cap {
                let tenant = (round % 4) as usize;
                if round / 4 % (tenant as u64 + 1) != 0 {
                    continue;
                }
                let lba = tenant as u64 * region + cursors[tenant];
                cursors[tenant] = (cursors[tenant] + 1) % region;
                t = e.write(lba, t).unwrap();
                t = e.maybe_reclaim(t).unwrap().1;
            }
            e.write_amplification()
        };
        let blind = run(false);
        let separated = run(true);
        assert!(
            separated < blind * 0.7,
            "region streams should slash WA: blind {blind:.2}, regions {separated:.2}"
        );
        assert!(
            separated < 1.6,
            "regional WA should be near 1, got {separated:.2}"
        );
    }

    #[test]
    fn reclaim_traces_gates_and_balanced_spans() {
        use bh_trace::{Event, HostEvent, Tracer};
        let mut e = emu(ReclaimPolicy::Immediate);
        e.set_tracer(Tracer::ring(1 << 16));
        let cap = e.capacity_pages();
        let mut t = Nanos::ZERO;
        for i in 0..4 * cap {
            t = e.write(i % cap, t).unwrap();
            if i % 32 == 0 {
                t = e.maybe_reclaim(t).unwrap().1;
            }
        }
        let events = e.tracer().events();
        let mut gates = 0;
        let mut begins = std::collections::HashMap::new();
        let mut ends = 0u64;
        for ev in &events {
            match ev.event {
                Event::Host(HostEvent::ReclaimGate { policy, .. }) => {
                    assert_eq!(policy, "immediate");
                    gates += 1;
                }
                Event::Host(HostEvent::ReclaimBegin { victim, live }) => {
                    assert!(ev.span.is_some());
                    begins.insert(ev.span, (victim, live, ev.at));
                }
                Event::Host(HostEvent::ReclaimEnd { victim, relocated }) => {
                    let (bv, live, begun) =
                        begins.remove(&ev.span).expect("end without matching begin");
                    assert_eq!(bv, victim);
                    assert_eq!(relocated, live);
                    assert!(ev.at >= begun);
                    ends += 1;
                }
                _ => {}
            }
        }
        assert!(gates > 0, "gate decisions should be traced");
        assert!(ends > 0, "reclaim episodes should be traced");
        assert!(
            begins.is_empty(),
            "every reclaim begin should have an end: {begins:?}"
        );
        assert_eq!(ends, e.stats().resets);
    }

    #[test]
    fn wa_is_infinite_for_pure_relocation() {
        let mut e = emu(ReclaimPolicy::Immediate);
        assert_eq!(e.write_amplification(), 1.0);
        e.stats.relocated = 5;
        assert!(e.write_amplification().is_infinite());
    }

    #[test]
    fn power_loss_replay_restores_acknowledged_writes() {
        let mut e = emu(ReclaimPolicy::Immediate);
        let cap = e.capacity_pages();
        let mut t = Nanos::ZERO;
        for lba in 0..cap {
            t = e.write(lba, t).unwrap();
        }
        // Churn so zones fill, garbage forms, and reclaim relocates.
        let mut x = 13u64;
        for i in 0..2 * cap {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t = e.write(x % cap, t).unwrap();
            if i % 64 == 0 {
                t = e.maybe_reclaim(t).unwrap().1;
            }
        }
        let mut expect = Vec::new();
        for lba in 0..cap {
            let (stamp, done) = e.read(lba, t).unwrap();
            expect.push(stamp);
            t = done;
        }
        let (done, scanned) = e.power_cycle(t).unwrap();
        assert!(scanned > 0, "partial zones must be scanned");
        assert_eq!(e.stats().replays, 1);
        // Every mapping survives with the same content.
        for lba in 0..cap {
            let (stamp, d) = e.read(lba, done).unwrap();
            assert_eq!(stamp, expect[lba as usize], "LBA {lba}");
            let _ = d;
        }
        // The device keeps accepting writes and reclaiming afterwards.
        let mut t = done;
        for i in 0..2 * cap {
            t = e.write(i % cap, t).unwrap();
            if i % 64 == 0 {
                t = e.maybe_reclaim(t).unwrap().1;
            }
        }
    }

    #[test]
    fn full_zone_summaries_make_replay_cheaper_than_a_scan() {
        let mut e = emu(ReclaimPolicy::Immediate);
        let cap = e.capacity_pages();
        let mut t = Nanos::ZERO;
        // Sequential fill: most zones end Full (summary on media), only
        // the last frontier stays partial.
        for lba in 0..cap {
            t = e.write(lba, t).unwrap();
        }
        let (_, scanned) = e.power_cycle(t).unwrap();
        // Full zones cost one summary read each; a raw scan would cost
        // `cap` page reads.
        assert!(
            scanned < cap / 2,
            "summaries should beat a full scan: {scanned} vs {cap} pages written"
        );
    }

    #[test]
    fn faulty_appends_redrive_and_data_survives() {
        let mut cfg = ZnsConfig::new(FlashConfig::tlc(Geometry::small_test()), 4);
        cfg.max_active_zones = 8;
        cfg.max_open_zones = 8;
        let dev = ZnsDevice::new(cfg).unwrap();
        // A 3-zone reserve: burned slots consume physical headroom, so a
        // faulty device needs more slack than a clean one.
        let mut e = BlockEmu::new(dev, 3, ReclaimPolicy::Immediate);
        // 4%: high enough to exercise redrives constantly, low enough
        // that zones rarely reach the 8-burn ReadOnly threshold.
        e.install_faults(bh_faults::FaultConfig::new(3).with_program_fail_ppm(40_000));
        let cap = e.capacity_pages();
        let mut t = Nanos::ZERO;
        for lba in 0..cap {
            t = e.write(lba, t).unwrap();
        }
        let mut x = 99u64;
        for i in 0..2 * cap {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t = e.write(x % cap, t).unwrap();
            if i % 32 == 0 {
                t = e.maybe_reclaim(t).unwrap().1;
            }
        }
        assert!(
            e.stats().program_redrives > 0,
            "a 4% program-fail rate must hit the write path"
        );
        // Acknowledged data still reads back (stamps decode to their LBA).
        for lba in 0..cap {
            let (stamp, done) = e.read(lba, t).unwrap();
            assert_eq!(decode_oob(stamp).1, lba, "stamp must belong to LBA {lba}");
            t = done;
        }
        // And the stack still survives a power loss under the same plan.
        let (done, _) = e.power_cycle(t).unwrap();
        for lba in 0..cap {
            let (stamp, _) = e.read(lba, done).unwrap();
            assert_eq!(decode_oob(stamp).1, lba);
        }
    }

    #[test]
    fn sustained_overwrite_without_explicit_reclaim_survives() {
        // The emergency path alone must keep the data path alive.
        let mut e = emu(ReclaimPolicy::IdleOnly {
            min_idle: Nanos::from_secs(3600),
        });
        let cap = e.capacity_pages();
        let mut t = Nanos::ZERO;
        for i in 0..4 * cap {
            t = e.write(i % cap, t).unwrap();
        }
        assert!(e.stats().resets > 0);
    }
}
