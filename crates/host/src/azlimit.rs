//! Active-zone budget management for multi-tenant hosts.
//!
//! §4.2: "A simple strategy is to assign a fixed number of zones to each
//! application together with a fixed active zone budget. However, this
//! approach does not scale for typical bursty workloads as it does not
//! allow multiplexing of this scarce resource. Is there a good strategy
//! for dynamically assigning zones on demand?"
//!
//! [`ActiveZoneManager`] arbitrates a device's MAR (maximum active zones)
//! among tenants under three strategies — the static baseline the paper
//! critiques, fully dynamic demand sharing, and a guaranteed-base lending
//! scheme. Experiment E10 drives all three with bursty tenants and
//! measures admission waits.

/// How the MAR budget is split among tenants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AzStrategy {
    /// Each tenant owns `MAR / tenants` slots; unused slots idle.
    StaticPartition,
    /// First-come-first-served sharing of the whole budget.
    DynamicDemand,
    /// Each tenant is guaranteed `MAR / tenants` slots; idle slots may be
    /// borrowed, but a guaranteed request revokes a borrower's slot.
    Lending,
}

/// Outcome of an acquisition request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AzGrant {
    /// A slot is available now.
    Granted,
    /// No slot now; the request must wait for a release.
    Blocked,
    /// (Lending only) a slot was granted by revoking one lent to the
    /// returned tenant; the borrower must release a zone when convenient.
    GrantedByRevoke {
        /// The tenant holding more than its guarantee.
        borrower: u32,
    },
}

/// Arbitrates active-zone slots among `tenants` under a strategy.
///
/// The manager tracks slot *counts* only; binding slots to concrete zone
/// ids is the caller's job. All methods are O(tenants).
#[derive(Debug, Clone)]
pub struct ActiveZoneManager {
    strategy: AzStrategy,
    limit: u32,
    held: Vec<u32>,
    /// Outstanding revocations per tenant (lending): slots the tenant
    /// must give back.
    owed: Vec<u32>,
}

impl ActiveZoneManager {
    /// Creates a manager for `tenants` tenants over `limit` total slots.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is zero or `limit < tenants` (every tenant
    /// needs at least one guaranteed slot for the static strategies to be
    /// meaningful).
    pub fn new(strategy: AzStrategy, limit: u32, tenants: u32) -> Self {
        assert!(tenants > 0, "need at least one tenant");
        assert!(limit >= tenants, "limit {limit} below one slot per tenant");
        ActiveZoneManager {
            strategy,
            limit,
            held: vec![0; tenants as usize],
            owed: vec![0; tenants as usize],
        }
    }

    /// The per-tenant guaranteed share.
    pub fn base_share(&self) -> u32 {
        self.limit / self.held.len() as u32
    }

    /// Slots currently held by `tenant`.
    pub fn held(&self, tenant: u32) -> u32 {
        self.held[tenant as usize]
    }

    /// Total slots currently held.
    pub fn total_held(&self) -> u32 {
        self.held.iter().sum()
    }

    /// Revocations outstanding against `tenant`.
    pub fn owed(&self, tenant: u32) -> u32 {
        self.owed[tenant as usize]
    }

    /// Requests one slot for `tenant`.
    pub fn acquire(&mut self, tenant: u32) -> AzGrant {
        let ti = tenant as usize;
        match self.strategy {
            AzStrategy::StaticPartition => {
                if self.held[ti] < self.base_share() {
                    self.held[ti] += 1;
                    AzGrant::Granted
                } else {
                    AzGrant::Blocked
                }
            }
            AzStrategy::DynamicDemand => {
                if self.total_held() < self.limit {
                    self.held[ti] += 1;
                    AzGrant::Granted
                } else {
                    AzGrant::Blocked
                }
            }
            AzStrategy::Lending => {
                if self.total_held() < self.limit {
                    self.held[ti] += 1;
                    return AzGrant::Granted;
                }
                // Full. A request within the guarantee can revoke from the
                // tenant borrowing the most.
                if self.held[ti] >= self.base_share() {
                    return AzGrant::Blocked;
                }
                let base = self.base_share();
                let borrower = self
                    .held
                    .iter()
                    .enumerate()
                    .filter(|&(i, &h)| h > base + self.owed[i])
                    .max_by_key(|&(i, &h)| h - self.owed[i])
                    .map(|(i, _)| i as u32);
                match borrower {
                    Some(b) => {
                        self.owed[b as usize] += 1;
                        self.held[ti] += 1;
                        // The budget is transiently over-committed until
                        // the borrower honours the revocation; callers
                        // model that delay.
                        AzGrant::GrantedByRevoke { borrower: b }
                    }
                    None => AzGrant::Blocked,
                }
            }
        }
    }

    /// Releases one slot held by `tenant`, honouring an outstanding
    /// revocation first.
    ///
    /// # Panics
    ///
    /// Panics if the tenant holds no slots — a caller accounting bug.
    pub fn release(&mut self, tenant: u32) {
        let ti = tenant as usize;
        assert!(self.held[ti] > 0, "tenant {tenant} released unheld slot");
        self.held[ti] -= 1;
        if self.owed[ti] > 0 {
            self.owed[ti] -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_partition_caps_each_tenant() {
        let mut m = ActiveZoneManager::new(AzStrategy::StaticPartition, 14, 2);
        assert_eq!(m.base_share(), 7);
        for _ in 0..7 {
            assert_eq!(m.acquire(0), AzGrant::Granted);
        }
        // Tenant 0 is capped even though half the device is idle.
        assert_eq!(m.acquire(0), AzGrant::Blocked);
        assert_eq!(m.acquire(1), AzGrant::Granted);
    }

    #[test]
    fn dynamic_shares_whole_budget() {
        let mut m = ActiveZoneManager::new(AzStrategy::DynamicDemand, 14, 2);
        for _ in 0..14 {
            assert_eq!(m.acquire(0), AzGrant::Granted);
        }
        assert_eq!(m.acquire(0), AzGrant::Blocked);
        // ...but a quiet tenant now finds nothing left.
        assert_eq!(m.acquire(1), AzGrant::Blocked);
        m.release(0);
        assert_eq!(m.acquire(1), AzGrant::Granted);
    }

    #[test]
    fn lending_borrows_idle_and_revokes_for_guarantees() {
        let mut m = ActiveZoneManager::new(AzStrategy::Lending, 14, 2);
        // Tenant 0 borrows the whole device.
        for _ in 0..14 {
            assert_eq!(m.acquire(0), AzGrant::Granted);
        }
        // Tenant 1's guaranteed request revokes from tenant 0.
        match m.acquire(1) {
            AzGrant::GrantedByRevoke { borrower } => assert_eq!(borrower, 0),
            g => panic!("expected revoke, got {g:?}"),
        }
        assert_eq!(m.owed(0), 1);
        // Tenant 0's next release pays the debt.
        m.release(0);
        assert_eq!(m.owed(0), 0);
        // Tenant 0 beyond its share with the device full: blocked.
        assert_eq!(m.acquire(0), AzGrant::Blocked);
    }

    #[test]
    fn lending_does_not_revoke_beyond_guarantee() {
        let mut m = ActiveZoneManager::new(AzStrategy::Lending, 4, 2);
        // Each tenant takes its guarantee of 2.
        for t in 0..2 {
            m.acquire(t);
            m.acquire(t);
        }
        // No one is borrowing; further requests block.
        assert_eq!(m.acquire(0), AzGrant::Blocked);
        assert_eq!(m.acquire(1), AzGrant::Blocked);
    }

    #[test]
    #[should_panic(expected = "released unheld slot")]
    fn release_of_unheld_slot_panics() {
        let mut m = ActiveZoneManager::new(AzStrategy::DynamicDemand, 4, 2);
        m.release(0);
    }

    #[test]
    #[should_panic(expected = "below one slot per tenant")]
    fn rejects_limit_below_tenants() {
        ActiveZoneManager::new(AzStrategy::StaticPartition, 2, 3);
    }
}
