//! A zoned log-structured filesystem (mini-F2FS).
//!
//! §4.1: "The filesystem has this information readily available and can
//! use it with ZNS SSDs; however, current Linux kernel filesystems for
//! ZNS SSDs (e.g., F2FS) do not yet use this information." [`ZonedLfs`]
//! is the missing data point on the interface spectrum between raw zones
//! ([`crate::zonefs`]) and applications: a filesystem with named files,
//! page-granular copy-on-write overwrites, and zone cleaning — and a
//! switch ([`HintMode`]) that either ignores ownership (today's F2FS) or
//! routes each owner's files to its own zone stream (what the paper says
//! filesystems *should* do).
//!
//! Deliberately omitted: directories beyond a flat namespace, permission
//! bits, and crash consistency for metadata (the KV store's WAL covers
//! that pattern elsewhere in the workspace). The flash-relevant
//! behaviours — allocation, overwrite garbage, cleaning, placement — are
//! all real.

use crate::error::HostError;
use crate::zalloc::{LifetimeClass, ZoneAllocator, ZonedLocation};
use crate::Result;
use bh_metrics::Nanos;
use bh_zns::{ZnsDevice, ZoneId, ZoneState};
use std::collections::HashMap;

/// How the filesystem maps files to zone streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HintMode {
    /// One stream for all data — today's zoned filesystems.
    None,
    /// One stream per owner (mod `streams`) — §4.1's proposal.
    ByOwner {
        /// Maximum concurrent owner streams.
        streams: u32,
    },
}

/// File metadata.
#[derive(Debug)]
struct Inode {
    owner: u32,
    /// Device location of each page of the file, in page order.
    extents: Vec<ZonedLocation>,
}

/// Filesystem counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct LfsStats {
    /// Pages written on behalf of files.
    pub host_pages: u64,
    /// Live pages migrated by cleaning.
    pub cleaned: u64,
    /// Zones reset by cleaning.
    pub resets: u64,
}

/// A log-structured filesystem over a ZNS device.
///
/// # Examples
///
/// ```
/// use bh_host::{HintMode, ZonedLfs};
/// use bh_zns::{ZnsConfig, ZnsDevice};
/// use bh_flash::{FlashConfig, Geometry};
/// use bh_metrics::Nanos;
///
/// let mut cfg = ZnsConfig::new(FlashConfig::tlc(Geometry::small_test()), 4);
/// cfg.max_active_zones = 8;
/// cfg.max_open_zones = 8;
/// let mut fs = ZonedLfs::new(ZnsDevice::new(cfg).unwrap(), HintMode::None);
/// let t = fs.create("log", 0).unwrap();
/// let t = fs.write(t, 0, 0xAB, Nanos::ZERO).unwrap();
/// let (stamp, _) = fs.read(t, 0, Nanos::ZERO).unwrap();
/// assert_eq!(stamp, 0xAB);
/// # let _ = t;
/// ```
pub struct ZonedLfs {
    dev: ZnsDevice,
    alloc: ZoneAllocator,
    hint: HintMode,
    names: HashMap<String, u64>,
    inodes: HashMap<u64, Inode>,
    next_ino: u64,
    /// Live page count per zone.
    live: Vec<u64>,
    /// Per zone: (ino, page index, offset) of pages written there.
    registry: Vec<Vec<(u64, u64, u64)>>,
    stats: LfsStats,
    stamp: u64,
}

impl ZonedLfs {
    /// Formats a filesystem over `dev`.
    pub fn new(dev: ZnsDevice, hint: HintMode) -> Self {
        let zones = dev.num_zones() as usize;
        ZonedLfs {
            dev,
            alloc: ZoneAllocator::new(),
            hint,
            names: HashMap::new(),
            inodes: HashMap::new(),
            next_ino: 1,
            live: vec![0; zones],
            registry: vec![Vec::new(); zones],
            stats: LfsStats::default(),
            stamp: 0,
        }
    }

    /// Filesystem counters.
    pub fn stats(&self) -> &LfsStats {
        &self.stats
    }

    /// The underlying device.
    pub fn device(&self) -> &ZnsDevice {
        &self.dev
    }

    /// Write amplification incurred so far (cleaning copies per host
    /// page).
    pub fn write_amplification(&self) -> f64 {
        if self.stats.host_pages == 0 {
            return 1.0;
        }
        (self.stats.host_pages + self.stats.cleaned) as f64 / self.stats.host_pages as f64
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the filesystem holds no files.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    fn class_for(&self, owner: u32) -> LifetimeClass {
        match self.hint {
            HintMode::None => LifetimeClass(0),
            HintMode::ByOwner { streams } => LifetimeClass(owner % streams),
        }
    }

    /// Creates an empty file owned by `owner`; returns its inode number.
    ///
    /// # Errors
    ///
    /// Returns [`HostError::DuplicateObject`] when the name exists.
    pub fn create(&mut self, name: &str, owner: u32) -> Result<u64> {
        if self.names.contains_key(name) {
            return Err(HostError::DuplicateObject(self.names[name]));
        }
        let ino = self.next_ino;
        self.next_ino += 1;
        self.names.insert(name.to_string(), ino);
        self.inodes.insert(
            ino,
            Inode {
                owner,
                extents: Vec::new(),
            },
        );
        Ok(ino)
    }

    /// Looks up a file by name.
    pub fn lookup(&self, name: &str) -> Option<u64> {
        self.names.get(name).copied()
    }

    /// File size in pages.
    ///
    /// # Errors
    ///
    /// Returns [`HostError::NoSuchObject`] for unknown inodes.
    pub fn size_pages(&self, ino: u64) -> Result<u64> {
        Ok(self
            .inodes
            .get(&ino)
            .ok_or(HostError::NoSuchObject(ino))?
            .extents
            .len() as u64)
    }

    /// Writes page `index` of the file (appending or copy-on-write
    /// overwriting), storing `stamp`. Returns the inode number for
    /// chaining convenience.
    ///
    /// # Errors
    ///
    /// - [`HostError::NoSuchObject`] for unknown inodes.
    /// - [`HostError::ShortRead`]-free: writing past the end extends the
    ///   file only by one page at a time (`index <= size`), otherwise
    ///   [`HostError::LbaOutOfRange`] describes the gap.
    pub fn write(&mut self, ino: u64, index: u64, stamp: u64, now: Nanos) -> Result<u64> {
        let (owner, size) = {
            let inode = self.inodes.get(&ino).ok_or(HostError::NoSuchObject(ino))?;
            (inode.owner, inode.extents.len() as u64)
        };
        if index > size {
            return Err(HostError::LbaOutOfRange {
                lba: index,
                capacity: size,
            });
        }
        let class = self.class_for(owner);
        // Clean proactively while a destination zone still exists:
        // relocating survivors requires somewhere to put them.
        if self.empty_zones() <= 1 {
            match self.clean(now, 2) {
                Ok(_) | Err(HostError::NoFreeZone) => {}
                Err(e) => return Err(e),
            }
        }
        self.stamp += 1;
        let tagged = (self.stamp << 16) | (stamp & 0xFFFF);
        let (loc, _done) = match self.alloc.append(&mut self.dev, class, tagged, now) {
            Ok(ok) => ok,
            Err(HostError::NoFreeZone) => {
                let t = self.clean(now, 2)?;
                self.alloc.append(&mut self.dev, class, tagged, t)?
            }
            Err(HostError::Zns(_)) => {
                self.alloc.finish_stale(&mut self.dev, class)?;
                self.alloc.append(&mut self.dev, class, tagged, now)?
            }
            Err(e) => return Err(e),
        };
        let inode = self.inodes.get_mut(&ino).expect("checked above");
        if index < size {
            // Copy-on-write overwrite: the old page becomes garbage.
            let old = inode.extents[index as usize];
            self.live[old.zone.0 as usize] -= 1;
            inode.extents[index as usize] = loc;
        } else {
            inode.extents.push(loc);
        }
        self.live[loc.zone.0 as usize] += 1;
        self.registry[loc.zone.0 as usize].push((ino, index, loc.offset));
        self.stats.host_pages += 1;
        Ok(ino)
    }

    /// Reads page `index` of the file; returns the stored 16-bit stamp
    /// and the completion instant.
    pub fn read(&mut self, ino: u64, index: u64, now: Nanos) -> Result<(u64, Nanos)> {
        let loc = self
            .inodes
            .get(&ino)
            .ok_or(HostError::NoSuchObject(ino))?
            .extents
            .get(index as usize)
            .copied()
            .ok_or(HostError::Unmapped(index))?;
        let (tagged, done) = self.dev.read(loc.zone, loc.offset, now)?;
        Ok((tagged & 0xFFFF, done))
    }

    /// Removes a file; its pages become garbage for cleaning.
    ///
    /// # Errors
    ///
    /// Returns [`HostError::NoSuchObject`] for unknown names.
    pub fn unlink(&mut self, name: &str) -> Result<()> {
        let ino = self.names.remove(name).ok_or(HostError::NoSuchObject(0))?;
        let inode = self.inodes.remove(&ino).expect("names and inodes agree");
        for loc in inode.extents {
            self.live[loc.zone.0 as usize] -= 1;
        }
        Ok(())
    }

    fn empty_zones(&self) -> u32 {
        // O(1): the device maintains the count across transitions, so
        // the per-write headroom check in `write` does not scan zones.
        self.dev.empty_zones()
    }

    /// Cleans zones until `target_free` are empty: migrates live pages of
    /// the most-garbage zone and resets it. Returns the completion
    /// instant.
    ///
    /// # Errors
    ///
    /// Returns [`HostError::NoFreeZone`] when no zone can be reclaimed.
    pub fn clean(&mut self, now: Nanos, target_free: u32) -> Result<Nanos> {
        let mut t = now;
        while self.empty_zones() < target_free {
            let victim = match self.pick_victim() {
                Some(v) => v,
                None => {
                    // Seal partially written zones with garbage, retry.
                    let sealable: Vec<ZoneId> = self
                        .dev
                        .zones()
                        .filter(|z| {
                            z.state().is_active()
                                && z.write_pointer() > self.live[z.id().0 as usize]
                        })
                        .map(|z| z.id())
                        .collect();
                    if sealable.is_empty() {
                        return Err(HostError::NoFreeZone);
                    }
                    for z in sealable {
                        self.dev.finish(z)?;
                        self.alloc.release(z);
                    }
                    self.pick_victim().ok_or(HostError::NoFreeZone)?
                }
            };
            t = self.clean_zone(victim, t)?;
        }
        Ok(t)
    }

    fn pick_victim(&self) -> Option<ZoneId> {
        let room = self.empty_zones() as u64 * self.dev.config().zone_capacity();
        self.dev
            .zones()
            .filter(|z| z.state() == ZoneState::Full)
            .map(|z| {
                let live = self.live[z.id().0 as usize];
                (z.id(), z.write_pointer() - live, live)
            })
            .filter(|&(_, g, live)| g > 0 && live <= room)
            .max_by_key(|&(_, g, _)| g)
            .map(|(id, _, _)| id)
    }

    fn clean_zone(&mut self, victim: ZoneId, now: Nanos) -> Result<Nanos> {
        let entries = std::mem::take(&mut self.registry[victim.0 as usize]);
        let mut t = now;
        for (ino, index, offset) in entries {
            let is_live = self
                .inodes
                .get(&ino)
                .and_then(|inode| inode.extents.get(index as usize))
                .map(|loc| loc.zone == victim && loc.offset == offset)
                .unwrap_or(false);
            if !is_live {
                continue;
            }
            let owner = self.inodes[&ino].owner;
            let class = self.class_for(owner);
            // Preserve the page content through the relocation: read it
            // back, then re-append.
            let (tagged, done) = self.dev.read(victim, offset, t)?;
            t = done;
            self.stamp += 1;
            let retagged = (self.stamp << 16) | (tagged & 0xFFFF);
            let (new_loc, done) = self.alloc.append(&mut self.dev, class, retagged, t)?;
            t = done;
            self.inodes.get_mut(&ino).expect("checked live").extents[index as usize] = new_loc;
            self.live[victim.0 as usize] -= 1;
            self.live[new_loc.zone.0 as usize] += 1;
            self.registry[new_loc.zone.0 as usize].push((ino, index, new_loc.offset));
            self.stats.cleaned += 1;
        }
        debug_assert_eq!(self.live[victim.0 as usize], 0);
        t = self.dev.reset(victim, t)?;
        self.alloc.release(victim);
        self.stats.resets += 1;
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_flash::{FlashConfig, Geometry};
    use bh_zns::ZnsConfig;

    fn fs(hint: HintMode) -> ZonedLfs {
        let mut cfg = ZnsConfig::new(FlashConfig::tlc(Geometry::small_test()), 2);
        cfg.max_active_zones = 8;
        cfg.max_open_zones = 8;
        ZonedLfs::new(ZnsDevice::new(cfg).unwrap(), hint)
    }

    #[test]
    fn create_write_read_roundtrip() {
        let mut f = fs(HintMode::None);
        let ino = f.create("a", 0).unwrap();
        let mut t = Nanos::ZERO;
        for i in 0..10u64 {
            f.write(ino, i, 100 + i, t).unwrap();
            t += Nanos::from_micros(10);
        }
        assert_eq!(f.size_pages(ino).unwrap(), 10);
        for i in 0..10u64 {
            let (stamp, _) = f.read(ino, i, t).unwrap();
            assert_eq!(stamp, 100 + i);
        }
        assert_eq!(f.lookup("a"), Some(ino));
        assert_eq!(f.lookup("b"), None);
    }

    #[test]
    fn overwrite_is_copy_on_write() {
        let mut f = fs(HintMode::None);
        let ino = f.create("a", 0).unwrap();
        f.write(ino, 0, 1, Nanos::ZERO).unwrap();
        f.write(ino, 0, 2, Nanos::ZERO).unwrap();
        let (stamp, _) = f.read(ino, 0, Nanos::ZERO).unwrap();
        assert_eq!(stamp, 2);
        // Two host pages written, one live.
        assert_eq!(f.stats().host_pages, 2);
        let total_live: u64 = f.live.iter().sum();
        assert_eq!(total_live, 1);
    }

    #[test]
    fn sparse_writes_are_rejected() {
        let mut f = fs(HintMode::None);
        let ino = f.create("a", 0).unwrap();
        assert!(matches!(
            f.write(ino, 5, 0, Nanos::ZERO),
            Err(HostError::LbaOutOfRange { .. })
        ));
    }

    #[test]
    fn unlink_frees_and_cleaning_reclaims() {
        let mut f = fs(HintMode::None);
        let mut t = Nanos::ZERO;
        // Fill one full zone's worth across two files.
        for name in ["a", "b"] {
            let ino = f.create(name, 0).unwrap();
            for i in 0..16u64 {
                f.write(ino, i, i, t).unwrap();
                t += Nanos::from_micros(10);
            }
        }
        f.unlink("a").unwrap();
        // Ask for more free zones than reclaim can ever deliver: clean
        // reclaims everything reclaimable, then reports exhaustion.
        let result = f.clean(t, f.device().num_zones());
        assert!(matches!(result, Err(HostError::NoFreeZone)));
        assert!(f.stats().resets >= 1, "the dead zone was reclaimable");
        // File b survived cleaning.
        let ino_b = f.lookup("b").unwrap();
        let (stamp, _) = f.read(ino_b, 3, t).unwrap();
        assert_eq!(stamp, 3);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut f = fs(HintMode::None);
        f.create("a", 0).unwrap();
        assert!(matches!(
            f.create("a", 1),
            Err(HostError::DuplicateObject(_))
        ));
    }

    /// The paper's point, in miniature: owner hints cut filesystem
    /// cleaning WA when owners have different file-churn rates.
    #[test]
    fn owner_hints_reduce_cleaning_wa() {
        let run = |hint: HintMode| -> f64 {
            let mut f = fs(hint);
            let mut t = Nanos::ZERO;
            // Owner 1 grows a long-lived file *interleaved* with owner
            // 0's churning temp files, so without hints every zone mixes
            // the two lifetimes.
            let stable = f.create("stable", 1).unwrap();
            for gen in 0..160u64 {
                if gen < 64 {
                    f.write(stable, gen, gen & 0xFF, t).unwrap();
                    t += Nanos::from_micros(5);
                }
                let name = format!("tmp{gen}");
                let ino = f.create(&name, 0).unwrap();
                for i in 0..8u64 {
                    f.write(ino, i, i, t).unwrap();
                    t += Nanos::from_micros(5);
                }
                if gen >= 4 {
                    f.unlink(&format!("tmp{}", gen - 4)).unwrap();
                }
            }
            // Stable data must survive all that cleaning.
            let (stamp, _) = f.read(stable, 10, t).unwrap();
            assert_eq!(stamp, 10);
            f.write_amplification()
        };
        let blind = run(HintMode::None);
        let hinted = run(HintMode::ByOwner { streams: 4 });
        assert!(
            blind > 1.01,
            "blind placement should pay cleaning copies, got {blind:.3}"
        );
        assert!(
            hinted < blind,
            "owner hints should cut cleaning WA: blind {blind:.3}, hinted {hinted:.3}"
        );
        assert!(hinted < 1.1, "hinted WA should be near 1, got {hinted:.3}");
    }
}
