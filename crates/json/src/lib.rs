//! Dependency-free JSON for the blockhead workspace.
//!
//! The build environment is offline, so reports, archived traces, and
//! recorded workloads serialize through this small value model instead of
//! an external crate. It covers what the simulator needs: an ordered
//! object representation (so report fields render in insertion order), a
//! compact and a pretty writer, and a strict recursive-descent parser for
//! round-trips in tests and tooling.
//!
//! Non-finite numbers serialize as `null` (matching `serde_json`), which
//! keeps infinite write-amplification values representable in reports
//! without producing invalid JSON.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`, written as an integer when exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

static NULL: Json = Json::Null;

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// An empty array.
    pub fn arr() -> Json {
        Json::Arr(Vec::new())
    }

    /// Inserts `key` into an object (replacing an existing key). Panics
    /// on non-objects — construction-time misuse, not a data error.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Json>) -> &mut Json {
        let Json::Obj(entries) = self else {
            panic!("Json::set on a non-object");
        };
        let key = key.into();
        let value = value.into();
        if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            entries.push((key, value));
        }
        self
    }

    /// Appends to an array. Panics on non-arrays.
    pub fn push(&mut self, value: impl Into<Json>) -> &mut Json {
        let Json::Arr(items) = self else {
            panic!("Json::push on a non-array");
        };
        items.push(value.into());
        self
    }

    /// Member lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element lookup; `None` out of bounds or on non-arrays.
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(index),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Unsigned view (exact integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// True for `Json::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Compact serialization.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization (2-space indent).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(entries) => {
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i, d| {
                    write_str(out, &entries[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    entries[i].1.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            for _ in 0..(depth + 1) * step {
                out.push(' ');
            }
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..depth * step {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // serde_json's convention: no Infinity/NaN literals in JSON.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}
macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(n: $t) -> Json {
                Json::Num(n as f64)
            }
        }
    )*};
}
from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl std::ops::Index<&str> for Json {
    type Output = Json;
    fn index(&self, key: &str) -> &Json {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Json {
    type Output = Json;
    fn index(&self, index: usize) -> &Json {
        self.at(index).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Json {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<f64> for Json {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.dump())
    }
}

/// Parses strict JSON text.
///
/// # Errors
///
/// Returns a byte-offset-annotated message on malformed input.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone leading surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid trailing surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid codepoint"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character from the source text.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_dumps_objects_in_order() {
        let mut j = Json::obj();
        j.set("b", 2u32).set("a", 1u32).set("s", "x");
        assert_eq!(j.dump(), r#"{"b":2,"a":1,"s":"x"}"#);
    }

    #[test]
    fn set_replaces_existing_keys() {
        let mut j = Json::obj();
        j.set("k", 1u32).set("k", 2u32);
        assert_eq!(j.dump(), r#"{"k":2}"#);
    }

    #[test]
    fn roundtrips_nested_structures() {
        let text =
            r#"{"name":"E0","vals":[1,2.5,-3,null,true],"sub":{"empty":[],"s":"a\"b\\c\nd"}}"#;
        let parsed = parse(text).unwrap();
        assert_eq!(parse(&parsed.dump()).unwrap(), parsed);
        assert_eq!(parsed["name"], "E0");
        assert_eq!(parsed["vals"][1], 2.5);
        assert_eq!(parsed["vals"][2], -3.0);
        assert!(parsed["vals"][3].is_null());
        assert_eq!(parsed["sub"]["s"].as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn pretty_output_is_reparsable() {
        let mut j = Json::obj();
        j.set("arr", Json::Arr(vec![1u32.into(), "two".into()]));
        j.set("n", Json::Null);
        let pretty = j.pretty();
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), j);
    }

    #[test]
    fn integers_write_without_decimal_point() {
        assert_eq!(Json::Num(3.0).dump(), "3");
        assert_eq!(Json::Num(3.25).dump(), "3.25");
        assert_eq!(Json::Num(-7.0).dump(), "-7");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::INFINITY).dump(), "null");
        assert_eq!(Json::Num(f64::NAN).dump(), "null");
    }

    #[test]
    fn unicode_escapes_parse() {
        let j = parse(r#""Aé😀""#).unwrap();
        assert_eq!(j.as_str(), Some("Aé😀"));
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in [
            "{not json",
            "[1,2",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "",
            "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn exponent_numbers_parse() {
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(parse("-2.5E-1").unwrap(), Json::Num(-0.25));
    }

    #[test]
    fn index_on_missing_is_null() {
        let j = parse(r#"{"a":1}"#).unwrap();
        assert!(j["missing"].is_null());
        assert!(j["a"][0].is_null());
    }
}
