//! Conventional block-interface SSD: a page-mapped FTL over `bh-flash`.
//!
//! This crate implements the device the paper argues we should stop
//! building systems for (§2). It exposes the traditional block interface —
//! a flat logical address space, randomly writable at page granularity —
//! and hides flash's constraints behind a flash translation layer that
//! does everything §2.1 lists:
//!
//! - page-granularity logical-to-physical **address translation**
//!   (the 4 B/page mapping table whose DRAM cost §2.2 quantifies),
//! - **garbage collection** with pluggable victim-selection policies
//!   (greedy, cost-benefit, FIFO),
//! - **overprovisioning**: spare flash capacity that delays GC and trades
//!   hardware cost for write amplification (the §2.2 lab experiment), and
//! - **wear leveling** across erasure blocks.
//!
//! The FTL's work is visible to the host only as latency: foreground GC
//! runs inside the write path, and its programs/erases occupy planes that
//! host reads then queue behind — reproducing the GC-induced tail latency
//! of §2.4 with no explicit interference model.

pub mod config;
pub mod error;
pub(crate) mod hotpath;
pub mod mapping;
pub mod policy;
pub mod ssd;
pub mod wear;

pub use config::ConvConfig;
pub use error::ConvError;
pub use mapping::MappingTable;
pub use policy::GcPolicy;
pub use ssd::{ConvSsd, FtlStats, WriteOutcome};
pub use wear::WearLeveler;

/// Convenience result alias for conventional-SSD operations.
pub type Result<T> = std::result::Result<T, ConvError>;
