//! Logical-to-physical address translation.
//!
//! The mapping table is the conventional FTL's defining data structure:
//! §2.2 of the paper prices it at "about 4 bytes per page … around 1 GB of
//! on-board DRAM per TB of flash". [`MappingTable`] maintains the forward
//! map (LBA → PPA), the reverse map GC needs (physical page → LBA), and
//! reports the DRAM an equivalent on-board table would occupy.

use bh_flash::{Geometry, Ppa};

/// Bytes per forward-map entry on a real device (§2.2's assumption).
pub const BYTES_PER_ENTRY: u64 = 4;

/// Page-granularity forward and reverse address maps.
#[derive(Debug, Clone)]
pub struct MappingTable {
    /// LBA (page number) → physical page, `None` when unmapped.
    l2p: Vec<Option<Ppa>>,
    /// Flat physical page index → LBA, `None` when the page holds no live
    /// data. Only meaningful for pages in the `Valid` flash state.
    p2l: Vec<Option<u64>>,
    geo: Geometry,
    mapped: u64,
}

impl MappingTable {
    /// Creates an empty table for `logical_pages` of exported capacity
    /// over geometry `geo`.
    pub fn new(logical_pages: u64, geo: Geometry) -> Self {
        MappingTable {
            l2p: vec![None; logical_pages as usize],
            p2l: vec![None; geo.total_pages() as usize],
            geo,
            mapped: 0,
        }
    }

    /// Exported logical capacity in pages.
    pub fn logical_pages(&self) -> u64 {
        self.l2p.len() as u64
    }

    /// Number of currently mapped logical pages.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped
    }

    /// Looks up the physical location of `lba`, if mapped.
    pub fn lookup(&self, lba: u64) -> Option<Ppa> {
        self.l2p.get(lba as usize).copied().flatten()
    }

    /// Returns the LBA stored at physical page `ppa`, if it is live.
    pub fn reverse(&self, ppa: Ppa) -> Option<u64> {
        self.p2l[self.geo.page_index(ppa) as usize]
    }

    /// Binds `lba` to `ppa`, returning the previous physical location (the
    /// page the caller must invalidate), if any.
    ///
    /// # Panics
    ///
    /// Panics if `lba` is out of range; [`crate::ConvSsd`] validates
    /// addresses at its boundary.
    pub fn bind(&mut self, lba: u64, ppa: Ppa) -> Option<Ppa> {
        let old = self.l2p[lba as usize].replace(ppa);
        if let Some(old_ppa) = old {
            self.p2l[self.geo.page_index(old_ppa) as usize] = None;
        } else {
            self.mapped += 1;
        }
        self.p2l[self.geo.page_index(ppa) as usize] = Some(lba);
        old
    }

    /// Unbinds `lba` (trim/deallocate), returning the physical page that
    /// held it, if any.
    pub fn unbind(&mut self, lba: u64) -> Option<Ppa> {
        let old = self.l2p[lba as usize].take();
        if let Some(old_ppa) = old {
            self.p2l[self.geo.page_index(old_ppa) as usize] = None;
            self.mapped -= 1;
        }
        old
    }

    /// Rebinds `lba` from one physical page to another during GC
    /// relocation. Unlike [`MappingTable::bind`], this asserts that the
    /// mapping currently points at `from` — relocating a stale page is a
    /// GC bug.
    ///
    /// # Panics
    ///
    /// Panics if `lba` is not currently mapped to `from`.
    pub fn relocate(&mut self, lba: u64, from: Ppa, to: Ppa) {
        assert_eq!(
            self.l2p[lba as usize],
            Some(from),
            "relocate of stale mapping for LBA {lba}"
        );
        self.l2p[lba as usize] = Some(to);
        self.p2l[self.geo.page_index(from) as usize] = None;
        self.p2l[self.geo.page_index(to) as usize] = Some(lba);
    }

    /// DRAM an on-board table of this size would occupy on a real device
    /// (§2.2: 4 bytes per logical page).
    pub fn device_dram_bytes(&self) -> u64 {
        device_dram_bytes_for(self.logical_pages())
    }
}

/// DRAM an on-board page-mapping table for `logical_pages` would occupy on
/// a real device (§2.2: 4 bytes per logical page), without materializing
/// the table. Used by the E3 cost experiment for terabyte-scale devices.
pub const fn device_dram_bytes_for(logical_pages: u64) -> u64 {
    logical_pages * BYTES_PER_ENTRY
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_flash::BlockId;

    fn table() -> MappingTable {
        MappingTable::new(64, Geometry::small_test())
    }

    fn ppa(b: u32, p: u32) -> Ppa {
        Ppa::new(BlockId(b), p)
    }

    #[test]
    fn bind_lookup_roundtrip() {
        let mut t = table();
        assert_eq!(t.lookup(5), None);
        assert_eq!(t.bind(5, ppa(1, 2)), None);
        assert_eq!(t.lookup(5), Some(ppa(1, 2)));
        assert_eq!(t.reverse(ppa(1, 2)), Some(5));
        assert_eq!(t.mapped_pages(), 1);
    }

    #[test]
    fn rebind_returns_old_location_and_clears_reverse() {
        let mut t = table();
        t.bind(5, ppa(1, 2));
        assert_eq!(t.bind(5, ppa(3, 4)), Some(ppa(1, 2)));
        assert_eq!(t.reverse(ppa(1, 2)), None);
        assert_eq!(t.reverse(ppa(3, 4)), Some(5));
        assert_eq!(t.mapped_pages(), 1);
    }

    #[test]
    fn unbind_trims() {
        let mut t = table();
        t.bind(7, ppa(0, 0));
        assert_eq!(t.unbind(7), Some(ppa(0, 0)));
        assert_eq!(t.lookup(7), None);
        assert_eq!(t.reverse(ppa(0, 0)), None);
        assert_eq!(t.mapped_pages(), 0);
        assert_eq!(t.unbind(7), None);
    }

    #[test]
    fn relocate_moves_mapping() {
        let mut t = table();
        t.bind(9, ppa(2, 3));
        t.relocate(9, ppa(2, 3), ppa(4, 0));
        assert_eq!(t.lookup(9), Some(ppa(4, 0)));
        assert_eq!(t.reverse(ppa(2, 3)), None);
        assert_eq!(t.reverse(ppa(4, 0)), Some(9));
    }

    #[test]
    #[should_panic(expected = "stale mapping")]
    fn relocate_of_stale_mapping_panics() {
        let mut t = table();
        t.bind(9, ppa(2, 3));
        t.relocate(9, ppa(1, 1), ppa(4, 0));
    }

    #[test]
    fn dram_accounting_matches_paper_math() {
        // §2.2: 4 KB pages at 4 B/entry is ~1 GB DRAM per TB of flash.
        let one_tb_pages = (1_u64 << 40) >> 12; // 2^28 pages.
        assert_eq!(device_dram_bytes_for(one_tb_pages), 1 << 30); // 1 GiB.
                                                                  // The method agrees with the free function.
        let t = table();
        assert_eq!(t.device_dram_bytes(), 64 * BYTES_PER_ENTRY);
    }
}
