//! Error type for the conventional SSD.

use bh_flash::FlashError;

/// Errors returned by [`crate::ConvSsd`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConvError {
    /// Logical block address beyond the exported capacity.
    LbaOutOfRange {
        /// The offending logical address.
        lba: u64,
        /// Exported capacity in pages.
        capacity: u64,
    },
    /// Read of a logical address that has never been written (or was
    /// trimmed).
    Unmapped(u64),
    /// The device has retired so many blocks it can no longer accept
    /// writes; it remains readable, like a real SSD entering read-only
    /// end-of-life.
    ReadOnly,
    /// An underlying flash constraint was violated — always an FTL bug.
    Flash(FlashError),
}

impl From<FlashError> for ConvError {
    fn from(e: FlashError) -> Self {
        ConvError::Flash(e)
    }
}

impl std::fmt::Display for ConvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvError::LbaOutOfRange { lba, capacity } => {
                write!(f, "LBA {lba} out of range (capacity {capacity} pages)")
            }
            ConvError::Unmapped(lba) => write!(f, "read of unmapped LBA {lba}"),
            ConvError::ReadOnly => write!(f, "device is read-only (end of life)"),
            ConvError::Flash(e) => write!(f, "flash error: {e}"),
        }
    }
}

impl std::error::Error for ConvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConvError::Flash(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_flash::BlockId;

    #[test]
    fn display_and_source() {
        let e = ConvError::LbaOutOfRange {
            lba: 10,
            capacity: 5,
        };
        assert!(e.to_string().contains("LBA 10"));
        let f: ConvError = FlashError::BadBlock(BlockId(1)).into();
        assert!(std::error::Error::source(&f).is_some());
    }
}
