//! Garbage-collection victim-selection policies.
//!
//! §2.1: when erasing a block with a mixture of valid and invalid pages,
//! the FTL first copies the valid pages forward — the cost GC policies try
//! to minimize. The three classic policies here span the design space the
//! FTL literature (surveyed by the paper's [14]) explores:
//!
//! - [`GcPolicy::Greedy`] picks the block with the fewest valid pages:
//!   optimal for uniform workloads.
//! - [`GcPolicy::CostBenefit`] weighs reclaimable space against copy cost
//!   and block age, better under skewed (hot/cold) workloads.
//! - [`GcPolicy::Fifo`] erases blocks in fill order, the cheapest to run.

use bh_flash::{Block, BlockId};
use bh_metrics::Nanos;

/// Victim-selection policy for garbage collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GcPolicy {
    /// Fewest valid pages first.
    Greedy,
    /// Maximize `age · (1 − u) / 2u` where `u` is block utilization
    /// (Kawaguchi et al.'s cost-benefit score).
    CostBenefit,
    /// Oldest sealed block first, regardless of contents.
    Fifo,
}

impl GcPolicy {
    /// Chooses a victim among `candidates` (sealed, fully written blocks),
    /// returning its position in the slice, or `None` when empty.
    ///
    /// `blocks` provides per-block state; `now` feeds age-based scores.
    pub fn select(
        self,
        candidates: &[BlockId],
        blocks: impl Fn(BlockId) -> BlockSnapshot,
        now: Nanos,
    ) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        match self {
            GcPolicy::Fifo => Some(0),
            GcPolicy::Greedy => candidates
                .iter()
                .enumerate()
                .min_by_key(|(_, &id)| blocks(id).valid_pages)
                .map(|(i, _)| i),
            GcPolicy::CostBenefit => {
                let mut best: Option<(usize, f64)> = None;
                for (i, &id) in candidates.iter().enumerate() {
                    let snap = blocks(id);
                    let score = cost_benefit_score(&snap, now);
                    match best {
                        Some((_, s)) if s >= score => {}
                        _ => best = Some((i, score)),
                    }
                }
                best.map(|(i, _)| i)
            }
        }
    }
}

/// The per-block facts victim selection consumes.
#[derive(Debug, Clone, Copy)]
pub struct BlockSnapshot {
    /// Live pages that would need copying forward.
    pub valid_pages: u32,
    /// Pages in the block.
    pub total_pages: u32,
    /// Virtual timestamp of the block's last erase, in nanoseconds.
    pub erased_at_ns: u64,
}

impl BlockSnapshot {
    /// Captures a snapshot from a flash block.
    pub fn of(block: &Block) -> Self {
        BlockSnapshot {
            valid_pages: block.valid_pages(),
            total_pages: block.num_pages(),
            erased_at_ns: block.erased_at_ns(),
        }
    }
}

/// Kawaguchi-style cost-benefit score: `age · (1 − u) / 2u`, with a block
/// full of invalid pages scoring infinitely well.
pub(crate) fn cost_benefit_score(snap: &BlockSnapshot, now: Nanos) -> f64 {
    let u = snap.valid_pages as f64 / snap.total_pages as f64;
    let age = now.as_nanos().saturating_sub(snap.erased_at_ns) as f64 + 1.0;
    if u == 0.0 {
        f64::INFINITY
    } else {
        age * (1.0 - u) / (2.0 * u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(valid: u32, erased_at_ns: u64) -> BlockSnapshot {
        BlockSnapshot {
            valid_pages: valid,
            total_pages: 16,
            erased_at_ns,
        }
    }

    #[test]
    fn empty_candidates_yield_none() {
        for p in [GcPolicy::Greedy, GcPolicy::CostBenefit, GcPolicy::Fifo] {
            assert_eq!(p.select(&[], |_| snap(0, 0), Nanos::ZERO), None);
        }
    }

    #[test]
    fn greedy_picks_fewest_valid() {
        let ids = [BlockId(0), BlockId(1), BlockId(2)];
        let lookup = |id: BlockId| snap([8, 2, 5][id.0 as usize], 0);
        assert_eq!(GcPolicy::Greedy.select(&ids, lookup, Nanos::ZERO), Some(1));
    }

    #[test]
    fn fifo_picks_first() {
        let ids = [BlockId(9), BlockId(1)];
        assert_eq!(
            GcPolicy::Fifo.select(&ids, |_| snap(0, 0), Nanos::ZERO),
            Some(0)
        );
    }

    #[test]
    fn cost_benefit_prefers_empty_blocks_absolutely() {
        let ids = [BlockId(0), BlockId(1)];
        let lookup = |id: BlockId| snap([4, 0][id.0 as usize], 0);
        assert_eq!(
            GcPolicy::CostBenefit.select(&ids, lookup, Nanos::from_secs(1)),
            Some(1)
        );
    }

    #[test]
    fn cost_benefit_prefers_older_blocks_at_equal_utilization() {
        let ids = [BlockId(0), BlockId(1)];
        // Block 1 erased earlier, so it is older and scores higher.
        let lookup = |id: BlockId| snap(8, [1_000_000, 10][id.0 as usize]);
        assert_eq!(
            GcPolicy::CostBenefit.select(&ids, lookup, Nanos::from_secs(1)),
            Some(1)
        );
    }

    #[test]
    fn cost_benefit_trades_age_against_utilization() {
        // A much older, slightly fuller block should beat a brand-new,
        // slightly emptier one.
        let ids = [BlockId(0), BlockId(1)];
        let lookup = |id: BlockId| match id.0 {
            0 => snap(6, 999_999_000), // Fresh, fewer valid pages.
            _ => snap(8, 0),           // Old, more valid pages.
        };
        assert_eq!(
            GcPolicy::CostBenefit.select(&ids, lookup, Nanos::from_secs(1)),
            Some(1)
        );
    }
}
