//! Configuration for the conventional SSD.

use crate::policy::GcPolicy;
use bh_flash::FlashConfig;

/// Construction parameters for a [`crate::ConvSsd`].
#[derive(Debug, Clone, Copy)]
pub struct ConvConfig {
    /// The underlying flash device.
    pub flash: FlashConfig,
    /// Overprovisioning ratio, defined as spare/logical capacity — the
    /// industry convention the paper uses ("7–28% of the usable
    /// capacity", §2.2). `0.07` means 7% extra physical space.
    ///
    /// Even at `0.0` the device functions: it always holds back
    /// [`ConvConfig::reserve_blocks_per_plane`] blocks per plane as
    /// working space, which is why the paper's "no overprovisioning"
    /// measurement yields a large-but-finite 15× write amplification.
    pub op_ratio: f64,
    /// Victim-selection policy for garbage collection.
    pub gc_policy: GcPolicy,
    /// Foreground GC runs while a plane's free-block count is at or below
    /// this watermark. Must be ≥ 2 (one block for the host frontier, one
    /// for the GC frontier).
    pub gc_watermark: u32,
    /// Blocks per plane excluded from the exported logical capacity as
    /// minimal FTL working space.
    pub reserve_blocks_per_plane: u32,
    /// When `Some(gap)`, static wear leveling migrates cold blocks once
    /// the wear spread (max − min erase count) exceeds `gap`.
    pub wear_level_gap: Option<u32>,
}

impl ConvConfig {
    /// A configuration with sensible defaults for the given flash device
    /// and overprovisioning ratio.
    ///
    /// The implicit reserve is sized as the two frontier blocks (host and
    /// GC write points) plus `max(2, blocks_per_plane/32)` blocks of GC
    /// headroom. On large planes this asymptotically hides ~3% of
    /// capacity — which is why a nominally "0% OP" device measures a
    /// large-but-finite write amplification (the paper's 15× point)
    /// instead of diverging.
    pub fn new(flash: FlashConfig, op_ratio: f64) -> Self {
        let watermark = 2;
        let headroom = (flash.geometry.blocks_per_plane / 32).max(2);
        ConvConfig {
            flash,
            op_ratio,
            gc_policy: GcPolicy::Greedy,
            gc_watermark: watermark,
            reserve_blocks_per_plane: watermark + headroom,
            wear_level_gap: None,
        }
    }

    /// Sets the garbage-collection victim-selection policy.
    pub fn with_gc_policy(mut self, policy: GcPolicy) -> Self {
        self.gc_policy = policy;
        self
    }

    /// Sets the free-block watermark at which foreground GC engages.
    pub fn with_gc_watermark(mut self, watermark: u32) -> Self {
        self.gc_watermark = watermark;
        self
    }

    /// Enables static wear leveling at the given erase-count spread.
    pub fn with_wear_level_gap(mut self, gap: u32) -> Self {
        self.wear_level_gap = Some(gap);
        self
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=4.0).contains(&self.op_ratio) || !self.op_ratio.is_finite() {
            return Err(format!("op_ratio {} out of range [0, 4]", self.op_ratio));
        }
        if self.gc_watermark < 2 {
            return Err("gc_watermark must be >= 2".to_string());
        }
        if self.reserve_blocks_per_plane < self.gc_watermark {
            return Err(format!(
                "reserve_blocks_per_plane {} must be >= gc_watermark {}",
                self.reserve_blocks_per_plane, self.gc_watermark
            ));
        }
        if self.reserve_blocks_per_plane >= self.flash.geometry.blocks_per_plane {
            return Err("reserve exceeds blocks per plane".to_string());
        }
        Ok(())
    }

    /// Logical capacity in pages exported to the host for this
    /// configuration: `(physical − reserve) / (1 + op_ratio)`.
    pub fn logical_pages(&self) -> u64 {
        let geo = &self.flash.geometry;
        let reserve = self.reserve_blocks_per_plane as u64
            * geo.total_planes() as u64
            * geo.pages_per_block as u64;
        let usable = geo.total_pages().saturating_sub(reserve);
        (usable as f64 / (1.0 + self.op_ratio)).floor() as u64
    }

    /// The spare fraction of physical capacity this configuration yields:
    /// `(physical − logical) / physical`. Useful for relating measured
    /// write amplification to analytic models.
    pub fn spare_fraction(&self) -> f64 {
        let total = self.flash.geometry.total_pages() as f64;
        (total - self.logical_pages() as f64) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_flash::Geometry;

    fn cfg(op: f64) -> ConvConfig {
        ConvConfig::new(FlashConfig::tlc(Geometry::small_test()), op)
    }

    #[test]
    fn defaults_validate() {
        assert!(cfg(0.0).validate().is_ok());
        assert!(cfg(0.25).validate().is_ok());
    }

    #[test]
    fn bad_parameters_rejected() {
        assert!(cfg(-0.1).validate().is_err());
        assert!(cfg(f64::NAN).validate().is_err());
        let mut c = cfg(0.1);
        c.gc_watermark = 1;
        assert!(c.validate().is_err());
        let mut c = cfg(0.1);
        c.reserve_blocks_per_plane = c.flash.geometry.blocks_per_plane;
        assert!(c.validate().is_err());
    }

    #[test]
    fn builders_compose() {
        let c = cfg(0.1)
            .with_gc_policy(GcPolicy::CostBenefit)
            .with_gc_watermark(3)
            .with_wear_level_gap(16);
        assert!(c.validate().is_ok());
        assert!(matches!(c.gc_policy, GcPolicy::CostBenefit));
        assert_eq!(c.gc_watermark, 3);
        assert_eq!(c.wear_level_gap, Some(16));
    }

    #[test]
    fn logical_capacity_shrinks_with_op() {
        let c0 = cfg(0.0);
        let zero = c0.logical_pages();
        let quarter = cfg(0.25).logical_pages();
        assert!(quarter < zero);
        let geo = c0.flash.geometry;
        let reserved = c0.reserve_blocks_per_plane as u64
            * geo.total_planes() as u64
            * geo.pages_per_block as u64;
        assert_eq!(zero, geo.total_pages() - reserved);
        assert_eq!(quarter, (zero as f64 / 1.25).floor() as u64);
    }

    #[test]
    fn spare_fraction_reflects_op() {
        assert!(cfg(0.0).spare_fraction() > 0.0); // Implicit reserve.
        assert!(cfg(0.25).spare_fraction() > cfg(0.0).spare_fraction());
        // The tiny test geometry has a proportionally huge implicit
        // reserve; just bound it away from "everything is spare".
        assert!(cfg(0.25).spare_fraction() < 0.7);
    }
}
