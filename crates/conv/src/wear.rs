//! Wear-leveling decision logic.
//!
//! §2.1 lists wear leveling among the conventional FTL's duties: "ensuring
//! erasure blocks wear as evenly as possible by balancing erasures across
//! all blocks". `blockhead` implements the two standard mechanisms:
//!
//! - **Dynamic** wear leveling is built into the allocator: free blocks
//!   are handed out least-worn first (see `ssd.rs`).
//! - **Static** wear leveling, decided here, migrates *cold* data out of
//!   rarely erased blocks once the wear spread exceeds a configured gap,
//!   putting those blocks back into rotation.

/// Tracks static wear-leveling configuration and activity.
#[derive(Debug, Clone, Copy)]
pub struct WearLeveler {
    /// Trigger threshold: level when `max_wear - min_wear > gap`.
    gap: u32,
    /// Cold blocks migrated so far.
    pub migrations: u64,
    /// Pages copied by leveling so far.
    pub pages_moved: u64,
}

impl WearLeveler {
    /// Creates a leveler with the given trigger gap.
    pub fn new(gap: u32) -> Self {
        WearLeveler {
            gap,
            migrations: 0,
            pages_moved: 0,
        }
    }

    /// The configured trigger gap.
    pub fn gap(&self) -> u32 {
        self.gap
    }

    /// Returns true when the observed wear spread warrants migrating a
    /// cold block.
    pub fn should_level(&self, min_wear: u32, max_wear: u32) -> bool {
        max_wear.saturating_sub(min_wear) > self.gap
    }

    /// Records one completed migration of `pages` valid pages.
    pub fn note_migration(&mut self, pages: u64) {
        self.migrations += 1;
        self.pages_moved += pages;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triggers_strictly_above_gap() {
        let w = WearLeveler::new(5);
        assert!(!w.should_level(10, 15));
        assert!(w.should_level(10, 16));
        assert!(!w.should_level(7, 3)); // Saturating: nonsense input is calm.
    }

    #[test]
    fn migration_accounting() {
        let mut w = WearLeveler::new(1);
        w.note_migration(12);
        w.note_migration(4);
        assert_eq!(w.migrations, 2);
        assert_eq!(w.pages_moved, 16);
    }
}
