//! Incrementally-maintained victim and free-block indexes for the FTL
//! hot path.
//!
//! The original allocator answered every per-write question by scanning:
//! victim selection walked the whole sealed list (`min_by_key`), the
//! free-list allocator walked every free block for the least-worn one,
//! and `pick_plane` re-counted garbage on each write. Fine at unit-test
//! geometries, dominant at realistic ones (thousands of blocks per
//! plane). The structures here replace those scans with indexes that are
//! maintained on every state transition — program, invalidate, seal,
//! erase, fault retirement, power-loss replay.
//!
//! The index is specialized to the configured GC policy, because the
//! maintenance cost lands on every page invalidation and a GC-heavy
//! workload invalidates on every host write:
//!
//! - **Greedy** keeps a lazy-deletion min-heap keyed `(valid, seq,
//!   block)`. Invalidation pushes the block's updated key and leaves the
//!   stale one in place; peeks discard keys that no longer match the
//!   block's current state. A block's fresh key always sorts before its
//!   stale keys (valid only decreases while sealed), so the first fresh
//!   key at the top is the true minimum. The heap is rebuilt from live
//!   entries when stale keys outnumber live blocks 4:1, keeping memory
//!   and push depth bounded.
//! - **Fifo** uses the same heap keyed `(0, seq, block)`; seal order
//!   never changes, so invalidation costs nothing at all.
//! - **Cost-benefit** keeps two ordered sets, `(valid, seq, block)` and
//!   `(valid, erased_at, seq, block)`, and selects by walking
//!   valid-count buckets (see `peek_cost_benefit`).
//!
//! **Determinism contract**: every peek reproduces the *exact* element
//! the replaced linear scan would have chosen, including tie-breaks:
//!
//! - `min_by_key`/strict-`<` scans keep the **first** minimum in
//!   iteration order; iteration order was seal order, so keys carry the
//!   monotone seal sequence and the minimum key is the scan's answer.
//! - `max_by_key` keeps the **last** maximum, so the invalid-page
//!   fallback wants the maximum `(invalid, seq)` — a total order, which
//!   an unordered scan over the entry table computes exactly. That path
//!   only runs when the policy's pick has nothing to reclaim, so it
//!   stays off the hot path (likewise the wear-level cold scan).
//! - The free list replays `Vec::swap_remove` position shuffling, since
//!   the first-minimum wear scan was position-order dependent.
//! - Cost-benefit resolves equal-score ties — including f64 rounding
//!   collapses — to the earliest sealed block, exactly as the linear
//!   first-maximum scan did.
//!
//! The experiment suite's byte-identical reports before/after this
//! module are the enforcement mechanism (see `tests/report_lockstep.rs`
//! in `bh-bench`), backed by the oracle property test in `bh-tests` —
//! [`VictimIndex::oracle_select`] *is* the original scan.

use crate::policy::{cost_benefit_score, BlockSnapshot, GcPolicy};
use bh_flash::BlockId;
use bh_metrics::Nanos;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// Per-block facts the victim index tracks while a block is sealed.
/// All fields are immutable for the lifetime of the entry except
/// `valid`/`invalid`, which move in lockstep on page invalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SealedEntry {
    /// Monotone seal sequence; within a plane this reproduces the seal
    /// order of the old candidate list.
    pub seq: u64,
    /// Valid (live) pages.
    pub valid: u32,
    /// Invalid (garbage) pages, `cursor - valid`.
    pub invalid: u32,
    /// Erase count at seal time (constant while sealed).
    pub wear: u32,
    /// Last-erase instant in nanoseconds (constant while sealed).
    pub erased_at: u64,
}

/// Heap keys: `(valid, seq, block)` for greedy, `(0, seq, block)` for
/// FIFO, wrapped in `Reverse` to turn the max-heap into a min-heap.
type HeapKey = Reverse<(u32, u64, u32)>;

/// Index over one plane's sealed blocks, specialized to the configured
/// GC policy.
#[derive(Debug)]
pub(crate) struct VictimIndex {
    /// First block id of the plane; `entries` is dense from it.
    base: u32,
    policy: GcPolicy,
    entries: Vec<Option<SealedEntry>>,
    /// Tracked (sealed) block count.
    live: usize,
    /// Total invalid pages across tracked blocks (the old
    /// `plane_garbage_pages` sum, maintained instead of recomputed).
    garbage: u64,
    /// Greedy/FIFO lazy-deletion min-heap.
    heap: BinaryHeap<HeapKey>,
    /// Cost-benefit only: `(valid, seq, block)`.
    by_valid: BTreeSet<(u32, u64, u32)>,
    /// Cost-benefit only: `(valid, erased_at, seq, block)`.
    by_cb: BTreeSet<(u32, u64, u64, u32)>,
}

impl VictimIndex {
    /// An empty index for a plane whose blocks are
    /// `base .. base + blocks`, serving `policy`.
    pub fn new(base: u32, blocks: u32, policy: GcPolicy) -> Self {
        VictimIndex {
            base,
            policy,
            entries: vec![None; blocks as usize],
            live: 0,
            garbage: 0,
            heap: BinaryHeap::new(),
            by_valid: BTreeSet::new(),
            by_cb: BTreeSet::new(),
        }
    }

    fn slot(&self, block: BlockId) -> usize {
        (block.0 - self.base) as usize
    }

    /// Number of sealed blocks tracked.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Total invalid pages across sealed blocks.
    pub fn garbage(&self) -> u64 {
        self.garbage
    }

    fn heap_key(policy: GcPolicy, entry: &SealedEntry, block: u32) -> HeapKey {
        match policy {
            GcPolicy::Greedy => Reverse((entry.valid, entry.seq, block)),
            GcPolicy::Fifo => Reverse((0, entry.seq, block)),
            GcPolicy::CostBenefit => unreachable!("cost-benefit uses ordered sets"),
        }
    }

    /// True when a heap key reflects its block's current state.
    fn key_fresh(&self, key: &HeapKey) -> bool {
        let Reverse((v, seq, block)) = *key;
        match self.entries[(block - self.base) as usize] {
            Some(e) => match self.policy {
                GcPolicy::Greedy => e.seq == seq && e.valid == v,
                GcPolicy::Fifo => e.seq == seq,
                GcPolicy::CostBenefit => unreachable!(),
            },
            None => false,
        }
    }

    /// Discards stale keys so the heap top (if any) is fresh.
    fn settle_heap(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.key_fresh(top) {
                return;
            }
            self.heap.pop();
        }
    }

    /// Rebuilds the heap from live entries once stale keys dominate,
    /// bounding memory and push depth. Amortized O(1) per mutation.
    fn maybe_compact(&mut self) {
        if self.heap.len() > 64 && self.heap.len() > 4 * self.live {
            let policy = self.policy;
            let base = self.base;
            self.heap = self
                .entries
                .iter()
                .enumerate()
                .filter_map(|(slot, e)| {
                    e.as_ref()
                        .map(|e| Self::heap_key(policy, e, base + slot as u32))
                })
                .collect();
        }
    }

    /// Tracks a newly sealed block.
    pub fn insert(&mut self, block: BlockId, entry: SealedEntry) {
        let slot = self.slot(block);
        debug_assert!(self.entries[slot].is_none(), "block sealed twice");
        // Record the entry before touching the heap: compaction rebuilds
        // from `entries`, so the new block must already be there.
        self.garbage += entry.invalid as u64;
        self.live += 1;
        self.entries[slot] = Some(entry);
        match self.policy {
            GcPolicy::Greedy | GcPolicy::Fifo => {
                self.heap.push(Self::heap_key(self.policy, &entry, block.0));
                self.maybe_compact();
            }
            GcPolicy::CostBenefit => {
                self.by_valid.insert((entry.valid, entry.seq, block.0));
                self.by_cb
                    .insert((entry.valid, entry.erased_at, entry.seq, block.0));
            }
        }
    }

    /// Stops tracking `block` (chosen as a GC or wear-leveling victim).
    /// Heap keys are discarded lazily at the next peek.
    pub fn remove(&mut self, block: BlockId) {
        let slot = self.slot(block);
        let Some(e) = self.entries[slot].take() else {
            return;
        };
        if self.policy == GcPolicy::CostBenefit {
            self.by_valid.remove(&(e.valid, e.seq, block.0));
            self.by_cb.remove(&(e.valid, e.erased_at, e.seq, block.0));
        }
        self.garbage -= e.invalid as u64;
        self.live -= 1;
    }

    /// Forgets everything (power-loss replay rebuilds from flash state).
    pub fn clear(&mut self) {
        self.entries.iter_mut().for_each(|e| *e = None);
        self.live = 0;
        self.garbage = 0;
        self.heap.clear();
        self.by_valid.clear();
        self.by_cb.clear();
    }

    /// One page of `block` went from valid to invalid. No-op for
    /// untracked blocks (open frontiers, in-flight victims).
    pub fn on_invalidate(&mut self, block: BlockId) {
        let slot = self.slot(block);
        let Some(e) = self.entries[slot].as_mut() else {
            return;
        };
        let (old_valid, seq, erased_at) = (e.valid, e.seq, e.erased_at);
        e.valid -= 1;
        e.invalid += 1;
        let valid = e.valid;
        self.garbage += 1;
        match self.policy {
            GcPolicy::Greedy => {
                self.heap.push(Reverse((valid, seq, block.0)));
                self.maybe_compact();
            }
            GcPolicy::Fifo => {}
            GcPolicy::CostBenefit => {
                self.by_valid.remove(&(old_valid, seq, block.0));
                self.by_valid.insert((valid, seq, block.0));
                self.by_cb.remove(&(old_valid, erased_at, seq, block.0));
                self.by_cb.insert((valid, erased_at, seq, block.0));
            }
        }
    }

    fn entry(&self, block: BlockId) -> &SealedEntry {
        self.entries[self.slot(block)]
            .as_ref()
            .expect("indexed block must be tracked")
    }

    /// The configured policy's primary choice, without removing it —
    /// exactly the block `GcPolicy::select` over the seal-order
    /// candidate list would return. `&mut` only to drop stale heap keys.
    pub fn peek_policy(&mut self, now: Nanos, total_pages: u32) -> Option<BlockId> {
        match self.policy {
            // Greedy's min_by_key keeps the first minimum in seal
            // order — the minimum (valid, seq). FIFO takes candidate 0,
            // the minimum (0, seq). Both are the settled heap top.
            GcPolicy::Greedy | GcPolicy::Fifo => {
                self.settle_heap();
                self.heap.peek().map(|&Reverse((_, _, b))| BlockId(b))
            }
            GcPolicy::CostBenefit => self.peek_cost_benefit(now, total_pages),
        }
    }

    /// The fallback the old code ran when the policy's choice had
    /// nothing to reclaim: `max_by_key(invalid)` keeps the *last*
    /// maximum in seal order, i.e. the maximum `(invalid, seq)`.
    pub fn peek_max_invalid(&self) -> Option<(BlockId, u32)> {
        let mut best: Option<(u32, u64, u32)> = None;
        for (slot, e) in self.entries.iter().enumerate() {
            let Some(e) = e else { continue };
            if best
                .map(|(i, s, _)| (e.invalid, e.seq) > (i, s))
                .unwrap_or(true)
            {
                best = Some((e.invalid, e.seq, self.base + slot as u32));
            }
        }
        best.map(|(i, _, b)| (BlockId(b), i))
    }

    /// Invalid-page count of a tracked block.
    pub fn invalid_of(&self, block: BlockId) -> u32 {
        self.entry(block).invalid
    }

    /// The plane's coldest sealed block `(block, wear)` — the first
    /// strict minimum of the old seal-order wear scan, i.e. the minimum
    /// `(wear, seq)`.
    pub fn peek_min_wear(&self) -> Option<(BlockId, u32)> {
        let mut best: Option<(u32, u64, u32)> = None;
        for (slot, e) in self.entries.iter().enumerate() {
            let Some(e) = e else { continue };
            if best
                .map(|(w, s, _)| (e.wear, e.seq) < (w, s))
                .unwrap_or(true)
            {
                best = Some((e.wear, e.seq, self.base + slot as u32));
            }
        }
        best.map(|(w, _, b)| (BlockId(b), w))
    }

    /// First-maximum cost-benefit choice, replicated bucket-by-bucket.
    ///
    /// Within one valid-count bucket the score `age·(1−u)/2u` is a
    /// non-increasing function of `erased_at` (monotone in f64 too:
    /// u64→f64 conversion, adding a constant, and scaling by a positive
    /// constant all preserve order), so the bucket's best lives at the
    /// head of the `(valid, erased_at, ...)` range — then the walk
    /// continues while scores stay *equal* (f64 rounding can collapse
    /// distinct ages) to find the earliest seal among the tied, which
    /// is what the linear first-maximum scan kept. Buckets at u = 0
    /// (all +inf) and u = 1 (all zero) score identically for every
    /// member, so their earliest seal wins outright.
    fn peek_cost_benefit(&self, now: Nanos, total_pages: u32) -> Option<BlockId> {
        let score_of = |valid: u32, erased_at: u64| {
            let snap = BlockSnapshot {
                valid_pages: valid,
                total_pages,
                erased_at_ns: erased_at,
            };
            cost_benefit_score(&snap, now)
        };
        // (score, seq, block) of the best candidate so far; the linear
        // scan replaces its best only on a strictly greater score, so
        // ties keep the smaller seq.
        let mut best: Option<(f64, u64, u32)> = None;
        let mut bucket: Option<u32> = None;
        loop {
            let from = match bucket {
                None => (0u32, 0u64, 0u64, 0u32),
                Some(v) => match v.checked_add(1) {
                    Some(next) => (next, 0, 0, 0),
                    None => break,
                },
            };
            let Some(&(v, head_erased, head_seq, head_block)) = self.by_cb.range(from..).next()
            else {
                break;
            };
            bucket = Some(v);
            let (score, seq, block) = if v == 0 || v >= total_pages {
                // Score is constant across the bucket (+inf or 0): the
                // earliest seal wins. `by_valid` orders the bucket by
                // seq directly.
                let &(_, seq, block) = self
                    .by_valid
                    .range((v, 0, 0)..)
                    .next()
                    .expect("bucket exists in both sets");
                (score_of(v, 0), seq, block)
            } else {
                let head_score = score_of(v, head_erased);
                let mut seq = head_seq;
                let mut block = head_block;
                for &(bv, e, s, b) in self.by_cb.range((v, head_erased, head_seq, head_block)..) {
                    if bv != v {
                        break;
                    }
                    let sc = score_of(v, e);
                    if sc < head_score {
                        // Scores are non-increasing along the bucket;
                        // past the tied prefix nothing can win.
                        break;
                    }
                    if s < seq {
                        seq = s;
                        block = b;
                    }
                }
                (head_score, seq, block)
            };
            match best {
                Some((bs, bq, _)) if bs > score || (bs == score && bq <= seq) => {}
                _ => best = Some((score, seq, block)),
            }
        }
        best.map(|(_, _, b)| BlockId(b))
    }

    /// Full-scan re-selection over a reconstructed seal-order candidate
    /// list — byte-for-byte the logic this index replaced, including
    /// the invalid-page fallback. The property tests drive random
    /// traffic and assert the indexed selection agrees with this at
    /// every step.
    pub fn oracle_select(&self, now: Nanos, total_pages: u32) -> Option<BlockId> {
        let mut by_seq: Vec<(u64, BlockId)> = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(slot, e)| {
                e.as_ref()
                    .map(|e| (e.seq, BlockId(self.base + slot as u32)))
            })
            .collect();
        by_seq.sort_unstable();
        let candidates: Vec<BlockId> = by_seq.into_iter().map(|(_, b)| b).collect();
        let snapshot = |id: BlockId| {
            let e = self.entry(id);
            BlockSnapshot {
                valid_pages: e.valid,
                total_pages,
                erased_at_ns: e.erased_at,
            }
        };
        let idx = self.policy.select(&candidates, snapshot, now)?;
        let victim = candidates[idx];
        if self.entry(victim).invalid == 0 {
            let (gi, _) = candidates
                .iter()
                .enumerate()
                .max_by_key(|(_, &b)| self.entry(b).invalid)?;
            let greedy_victim = candidates[gi];
            if self.entry(greedy_victim).invalid == 0 {
                return None;
            }
            return Some(greedy_victim);
        }
        Some(victim)
    }

    /// Checks internal consistency; returns a description of the first
    /// violation. `truth` maps a tracked block to its flash-state
    /// `(valid, invalid, wear, erased_at)`.
    pub fn check(
        &self,
        mut truth: impl FnMut(BlockId) -> (u32, u32, u32, u64),
    ) -> Result<(), String> {
        let tracked = self.entries.iter().flatten().count();
        if tracked != self.live {
            return Err(format!("live count {} != tracked {tracked}", self.live));
        }
        if self.policy == GcPolicy::CostBenefit
            && (self.by_valid.len() != tracked || self.by_cb.len() != tracked)
        {
            return Err("cost-benefit set sizes disagree with entries".into());
        }
        let mut garbage = 0u64;
        for (slot, e) in self.entries.iter().enumerate() {
            let Some(e) = e else { continue };
            let b = self.base + slot as u32;
            let (valid, invalid, wear, erased_at) = truth(BlockId(b));
            if (e.valid, e.invalid, e.wear, e.erased_at) != (valid, invalid, wear, erased_at) {
                return Err(format!(
                    "block {b}: entry {e:?} != flash ({valid}, {invalid}, {wear}, {erased_at})"
                ));
            }
            match self.policy {
                GcPolicy::Greedy | GcPolicy::Fifo => {
                    let key = Self::heap_key(self.policy, e, b);
                    if !self.heap.iter().any(|k| *k == key) {
                        return Err(format!("block {b}: fresh key missing from heap"));
                    }
                }
                GcPolicy::CostBenefit => {
                    if !self.by_valid.contains(&(e.valid, e.seq, b))
                        || !self.by_cb.contains(&(e.valid, e.erased_at, e.seq, b))
                    {
                        return Err(format!("block {b}: missing from cost-benefit sets"));
                    }
                }
            }
            garbage += e.invalid as u64;
        }
        if garbage != self.garbage {
            return Err(format!(
                "garbage counter {} != recomputed {garbage}",
                self.garbage
            ));
        }
        Ok(())
    }
}

/// The erased-block pool of one plane, replacing a `Vec<BlockId>` that
/// was scanned with `min_by_key(wear)` and compacted with
/// `swap_remove`.
///
/// Allocation order is position-dependent under `swap_remove` (the last
/// element moves into the popped hole), so byte-identical behaviour
/// requires keeping the *positions* live: `slots` mirrors the original
/// `Vec` exactly, and `by_wear` keys `(wear, position)` so `.first()`
/// is the first minimum the scan kept. Wear is constant while a block
/// sits in the pool (only erases change it), so keys never go stale.
#[derive(Debug)]
pub(crate) struct FreeList {
    slots: Vec<(BlockId, u32)>,
    by_wear: BTreeSet<(u32, u32)>,
}

impl FreeList {
    pub fn new() -> Self {
        FreeList {
            slots: Vec::new(),
            by_wear: BTreeSet::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    pub fn clear(&mut self) {
        self.slots.clear();
        self.by_wear.clear();
    }

    /// Appends a block with its current wear, as `Vec::push` did.
    pub fn push(&mut self, block: BlockId, wear: u32) {
        self.slots.push((block, wear));
        self.by_wear.insert((wear, self.slots.len() as u32 - 1));
    }

    /// Pops the least-worn block — the first minimum in slot order —
    /// and replays the `swap_remove` shuffle on the vacated position.
    pub fn pop_least_worn(&mut self) -> Option<BlockId> {
        let &(wear, pos) = self.by_wear.first()?;
        self.by_wear.remove(&(wear, pos));
        let last = self.slots.len() - 1;
        if (pos as usize) < last {
            let (_, moved_wear) = self.slots[last];
            self.by_wear.remove(&(moved_wear, last as u32));
            self.by_wear.insert((moved_wear, pos));
        }
        Some(self.slots.swap_remove(pos as usize).0)
    }

    /// Checks internal consistency; `truth` returns a block's wear.
    pub fn check(&self, mut truth: impl FnMut(BlockId) -> u32) -> Result<(), String> {
        if self.by_wear.len() != self.slots.len() {
            return Err("free-list set size disagrees with slots".into());
        }
        for (i, &(b, w)) in self.slots.iter().enumerate() {
            if truth(b) != w {
                return Err(format!("free block {}: stored wear {w} is stale", b.0));
            }
            if !self.by_wear.contains(&(w, i as u32)) {
                return Err(format!("free block {} missing from by_wear", b.0));
            }
        }
        // The pop the index would take must equal the linear scan's.
        let linear = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|&(_, &(_, w))| w)
            .map(|(i, _)| i as u32);
        let indexed = self.by_wear.first().map(|&(_, pos)| pos);
        if linear != indexed {
            return Err(format!(
                "free-list pop disagrees: linear {linear:?} vs indexed {indexed:?}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64, valid: u32, invalid: u32, wear: u32, erased_at: u64) -> SealedEntry {
        SealedEntry {
            seq,
            valid,
            invalid,
            wear,
            erased_at,
        }
    }

    #[test]
    fn greedy_pop_is_first_minimum_in_seal_order() {
        let mut idx = VictimIndex::new(0, 8, GcPolicy::Greedy);
        idx.insert(BlockId(3), entry(1, 5, 3, 0, 0));
        idx.insert(BlockId(1), entry(2, 2, 6, 0, 0));
        idx.insert(BlockId(4), entry(3, 2, 6, 0, 0));
        // Two blocks tie at valid=2; the earlier seal (block 1) wins.
        assert_eq!(idx.peek_policy(Nanos::ZERO, 8), Some(BlockId(1)));
        assert_eq!(idx.oracle_select(Nanos::ZERO, 8), Some(BlockId(1)));
    }

    #[test]
    fn greedy_heap_skips_stale_keys() {
        let mut idx = VictimIndex::new(0, 8, GcPolicy::Greedy);
        idx.insert(BlockId(0), entry(1, 4, 0, 0, 0));
        idx.insert(BlockId(1), entry(2, 6, 0, 0, 0));
        // Drain block 1 below block 0: stale (6, ...) and (5, ...) keys
        // linger in the heap but the fresh (3, ...) key must win.
        for _ in 0..3 {
            idx.on_invalidate(BlockId(1));
        }
        assert_eq!(idx.peek_policy(Nanos::ZERO, 8), Some(BlockId(1)));
        assert_eq!(idx.oracle_select(Nanos::ZERO, 8), Some(BlockId(1)));
        // Removing the winner exposes the other block.
        idx.remove(BlockId(1));
        assert_eq!(idx.peek_policy(Nanos::ZERO, 8), Some(BlockId(0)));
    }

    #[test]
    fn fifo_peeks_in_seal_order_regardless_of_contents() {
        let mut idx = VictimIndex::new(0, 8, GcPolicy::Fifo);
        idx.insert(BlockId(5), entry(1, 1, 7, 0, 0));
        idx.insert(BlockId(2), entry(2, 0, 8, 0, 0));
        idx.on_invalidate(BlockId(5));
        assert_eq!(idx.peek_policy(Nanos::ZERO, 8), Some(BlockId(5)));
        idx.remove(BlockId(5));
        assert_eq!(idx.peek_policy(Nanos::ZERO, 8), Some(BlockId(2)));
    }

    #[test]
    fn fallback_is_last_maximum_in_seal_order() {
        let mut idx = VictimIndex::new(0, 8, GcPolicy::Greedy);
        idx.insert(BlockId(2), entry(1, 4, 4, 0, 0));
        idx.insert(BlockId(5), entry(2, 4, 4, 0, 0));
        // max_by_key keeps the last maximum: the later seal (block 5).
        assert_eq!(idx.peek_max_invalid(), Some((BlockId(5), 4)));
    }

    #[test]
    fn cost_benefit_matches_oracle_across_buckets() {
        let mut idx = VictimIndex::new(0, 16, GcPolicy::CostBenefit);
        let now = Nanos::from_micros(50);
        idx.insert(BlockId(0), entry(1, 8, 8, 0, 10_000));
        idx.insert(BlockId(1), entry(2, 8, 8, 0, 10));
        idx.insert(BlockId(2), entry(3, 2, 14, 0, 40_000));
        idx.insert(BlockId(3), entry(4, 8, 8, 0, 10));
        assert_eq!(idx.peek_cost_benefit(now, 16), idx.oracle_select(now, 16),);
        assert_eq!(idx.peek_cost_benefit(now, 16), Some(BlockId(2)));
    }

    #[test]
    fn cost_benefit_constant_score_buckets_take_earliest_seal() {
        let mut idx = VictimIndex::new(0, 16, GcPolicy::CostBenefit);
        let now = Nanos::from_micros(50);
        // valid == total scores 0 for every age; valid == 0 scores +inf.
        idx.insert(BlockId(4), entry(1, 8, 0, 0, 7));
        idx.insert(BlockId(6), entry(2, 8, 0, 0, 3));
        assert_eq!(idx.peek_cost_benefit(now, 8), Some(BlockId(4)));
        idx.insert(BlockId(7), entry(3, 0, 8, 0, 9));
        idx.insert(BlockId(5), entry(4, 0, 8, 0, 2));
        assert_eq!(idx.peek_cost_benefit(now, 8), Some(BlockId(7)));
        assert_eq!(idx.oracle_select(now, 8), Some(BlockId(7)));
    }

    #[test]
    fn invalidate_moves_entries_between_buckets() {
        for policy in [GcPolicy::Greedy, GcPolicy::CostBenefit, GcPolicy::Fifo] {
            let mut idx = VictimIndex::new(8, 8, policy);
            idx.insert(BlockId(9), entry(1, 4, 0, 2, 100));
            idx.on_invalidate(BlockId(9));
            idx.on_invalidate(BlockId(9));
            assert_eq!(idx.garbage(), 2);
            assert_eq!(idx.invalid_of(BlockId(9)), 2);
            idx.check(|_| (2, 2, 2, 100)).unwrap();
            idx.remove(BlockId(9));
            assert_eq!(idx.garbage(), 0);
            assert_eq!(idx.len(), 0);
        }
    }

    #[test]
    fn heap_compaction_keeps_memory_bounded() {
        let mut idx = VictimIndex::new(0, 4, GcPolicy::Greedy);
        idx.insert(BlockId(0), entry(1, 1000, 0, 0, 0));
        idx.insert(BlockId(1), entry(2, 1000, 0, 0, 0));
        for _ in 0..500 {
            idx.on_invalidate(BlockId(0));
        }
        // 500 pushes against 2 live blocks: compaction must have kicked
        // in well below the push count.
        assert!(idx.heap.len() <= 66, "heap grew to {}", idx.heap.len());
        assert_eq!(idx.peek_policy(Nanos::ZERO, 2000), Some(BlockId(0)));
        idx.check(|b| {
            if b.0 == 0 {
                (500, 500, 0, 0)
            } else {
                (1000, 0, 0, 0)
            }
        })
        .unwrap();
    }

    #[test]
    fn free_list_replays_swap_remove_order() {
        // All equal wear: the original Vec scan pops position 0, then
        // swap_remove moves the last block into the hole — so the pop
        // order is 0, 3, 2, 1, not sorted block order.
        let mut f = FreeList::new();
        for b in 0..4 {
            f.push(BlockId(b), 0);
        }
        f.check(|_| 0).unwrap();
        let mut popped = Vec::new();
        while let Some(b) = f.pop_least_worn() {
            popped.push(b.0);
        }
        assert_eq!(popped, vec![0, 3, 2, 1]);
    }

    #[test]
    fn free_list_prefers_least_worn() {
        let mut f = FreeList::new();
        f.push(BlockId(0), 5);
        f.push(BlockId(1), 1);
        f.push(BlockId(2), 3);
        assert_eq!(f.pop_least_worn(), Some(BlockId(1)));
        f.check(|b| [5, 1, 3][b.0 as usize]).unwrap();
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
    }

    #[test]
    fn min_wear_ties_break_to_earliest_seal() {
        let mut idx = VictimIndex::new(0, 8, GcPolicy::Greedy);
        idx.insert(BlockId(6), entry(1, 1, 1, 3, 0));
        idx.insert(BlockId(2), entry(2, 1, 1, 3, 0));
        assert_eq!(idx.peek_min_wear(), Some((BlockId(6), 3)));
    }
}
