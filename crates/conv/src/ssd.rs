//! The conventional SSD: block interface over a page-mapped FTL.
//!
//! [`ConvSsd`] exports a flat, randomly writable logical page space (the
//! "block interface" of §2). Every behaviour the paper attributes to
//! conventional SSDs emerges here:
//!
//! - Random overwrites invalidate pages in place-less flash, so space is
//!   reclaimed by **foreground garbage collection** inside the write path.
//! - GC programs/erases occupy planes, so concurrent host reads queue
//!   behind them (**tail-latency interference**, §2.4).
//! - More **overprovisioning** means emptier victims and less copying
//!   (**write amplification vs. OP**, the §2.2 lab experiment).

use crate::config::ConvConfig;
use crate::error::ConvError;
use crate::hotpath::{FreeList, SealedEntry, VictimIndex};
use crate::mapping::MappingTable;
#[cfg(test)]
use crate::policy::GcPolicy;
use crate::wear::WearLeveler;
use crate::Result;
use bh_flash::{
    decode_oob, encode_oob, Block, BlockId, BlockStatus, FlashDevice, FlashError, FlashStats,
    OpOrigin, PlaneId, Ppa, Stamp,
};
use bh_metrics::Nanos;
use bh_obs::{Ctr, Obs};
use bh_trace::{ConvEvent, FaultEvent, SpanId, Tracer};

/// Upper bound on re-drives of a single host write or GC copy before the
/// FTL gives up and surfaces the program failure; transient-failure rates
/// that exceed this are device end-of-life, not a fault to paper over.
const MAX_REDRIVES: u32 = 8;

/// Per-plane allocation state.
#[derive(Debug)]
struct PlaneState {
    /// Erased blocks, ordered by wear so allocation implements dynamic
    /// wear leveling without scanning.
    free: FreeList,
    /// Block currently receiving host writes.
    host_frontier: Option<BlockId>,
    /// Block currently receiving GC relocations.
    gc_frontier: Option<BlockId>,
    /// Sealed blocks (GC victim candidates), indexed for the configured
    /// policy's selection order plus the plane garbage total.
    victims: VictimIndex,
    /// Victim currently being relocated incrementally, if any.
    gc_victim: Option<BlockId>,
    /// Resume point for the in-flight victim's valid-page scan. Pages
    /// never return to valid while a block is a victim, so the scan is
    /// monotone and each page is visited once per episode instead of
    /// rescanning from page 0 on every copy.
    gc_scan: u32,
    /// Trace span covering the in-flight GC episode.
    gc_span: SpanId,
    /// Valid pages copied out of the in-flight victim so far.
    gc_copied: u32,
}

/// Counters for FTL-internal activity.
#[derive(Debug, Clone, Copy, Default)]
pub struct FtlStats {
    /// Foreground GC invocations (write path had to reclaim space).
    pub gc_runs: u64,
    /// Valid pages copied forward by GC.
    pub gc_pages_copied: u64,
    /// Blocks erased by GC.
    pub gc_erases: u64,
    /// Static wear-leveling migrations.
    pub wl_migrations: u64,
    /// Programs re-driven after a transient program failure burned a page.
    pub program_redrives: u64,
    /// Power-loss recovery passes completed.
    pub replays: u64,
    /// Pages read back during power-loss recovery scans.
    pub replay_pages_scanned: u64,
}

/// A conventional block-interface SSD.
///
/// # Examples
///
/// ```
/// use bh_conv::{ConvConfig, ConvSsd};
/// use bh_flash::{FlashConfig, Geometry};
/// use bh_metrics::Nanos;
///
/// let cfg = ConvConfig::new(FlashConfig::tlc(Geometry::small_test()), 0.25);
/// let mut ssd = ConvSsd::new(cfg).unwrap();
/// let w = ssd.write(7, Nanos::ZERO).unwrap();
/// let (stamp, _done) = ssd.read(7, w.done).unwrap();
/// assert_eq!(stamp, w.stamp);
/// ```
pub struct ConvSsd {
    dev: FlashDevice,
    cfg: ConvConfig,
    map: MappingTable,
    planes: Vec<PlaneState>,
    leveler: Option<WearLeveler>,
    stats: FtlStats,
    stamp_counter: Stamp,
    next_plane: u32,
    /// Rotating cursor for GC relocation destinations.
    gc_next_plane: u32,
    /// Monotone counter driving plane-allocation dither.
    dither: u32,
    /// Monotone seal counter; per-plane ordering of sealed blocks (the
    /// old candidate-list order) is the order of these values.
    seal_seq: u64,
    read_only: bool,
    tracer: Tracer,
    /// Live counter registry; FTL-level bumps mirror [`FtlStats`].
    obs: Obs,
}

/// Captures the victim-index entry for a block being sealed.
fn sealed_entry(blk: &Block, seq: u64) -> SealedEntry {
    SealedEntry {
        seq,
        valid: blk.valid_pages(),
        invalid: blk.invalid_pages(),
        wear: blk.wear(),
        erased_at: blk.erased_at_ns(),
    }
}

/// Result of a host write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Completion instant, including any foreground GC the write waited
    /// behind.
    pub done: Nanos,
    /// Stamp stored for the page; reads return it, so callers can verify
    /// integrity end to end.
    pub stamp: Stamp,
}

impl ConvSsd {
    /// Builds a conventional SSD from `cfg`.
    ///
    /// # Errors
    ///
    /// Returns a description if the configuration or geometry is invalid.
    pub fn new(cfg: ConvConfig) -> std::result::Result<Self, String> {
        cfg.validate()?;
        let dev = FlashDevice::new(cfg.flash)?;
        let geo = *dev.geometry();
        let map = MappingTable::new(cfg.logical_pages(), geo);
        let planes = (0..geo.total_planes())
            .map(|p| {
                // All blocks start erased with wear 0; order is arbitrary.
                let mut free = FreeList::new();
                for i in 0..geo.blocks_per_plane {
                    free.push(geo.block_in_plane(PlaneId(p), i), 0);
                }
                PlaneState {
                    free,
                    host_frontier: None,
                    gc_frontier: None,
                    victims: VictimIndex::new(
                        geo.block_in_plane(PlaneId(p), 0).0,
                        geo.blocks_per_plane,
                        cfg.gc_policy,
                    ),
                    gc_victim: None,
                    gc_scan: 0,
                    gc_span: SpanId::NONE,
                    gc_copied: 0,
                }
            })
            .collect();
        Ok(ConvSsd {
            dev,
            cfg,
            map,
            planes,
            leveler: cfg.wear_level_gap.map(WearLeveler::new),
            stats: FtlStats::default(),
            stamp_counter: 0,
            next_plane: 0,
            gc_next_plane: 0,
            dither: 0,
            seal_seq: 0,
            read_only: false,
            tracer: Tracer::disabled(),
            obs: Obs::disabled(),
        })
    }

    /// Installs a tracer on the FTL and the flash device beneath it. GC
    /// episodes appear as begin/end span pairs; flash operations carry
    /// their physical coordinates and origin.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.dev.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// The tracer in use (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Installs a live counter registry on the FTL and the flash device
    /// beneath it, so one handle observes the whole stack.
    pub fn set_obs(&mut self, obs: Obs) {
        self.dev.set_obs(obs.clone());
        self.obs = obs;
    }

    /// The registry handle in use (disabled by default).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Installs a transient-fault plan on the underlying flash device.
    pub fn install_faults(&mut self, cfg: bh_faults::FaultConfig) {
        self.dev.install_faults(cfg);
    }

    /// Exported logical capacity in pages.
    pub fn capacity_pages(&self) -> u64 {
        self.map.logical_pages()
    }

    /// Logical page size in bytes.
    pub fn page_bytes(&self) -> u32 {
        self.dev.geometry().page_bytes
    }

    /// Underlying flash statistics (programs, erases, copies, WA).
    pub fn flash_stats(&self) -> &FlashStats {
        self.dev.stats()
    }

    /// FTL-internal activity counters.
    pub fn ftl_stats(&self) -> &FtlStats {
        &self.stats
    }

    /// Current write amplification factor.
    pub fn write_amplification(&self) -> f64 {
        self.dev.stats().write_amplification()
    }

    /// On-board DRAM a real device would need for this FTL's mapping
    /// table (§2.2 math).
    pub fn device_dram_bytes(&self) -> u64 {
        self.map.device_dram_bytes()
    }

    /// True once the device has retired into read-only end-of-life.
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// Direct access to the wear-leveler state, if enabled.
    pub fn wear_leveler(&self) -> Option<&WearLeveler> {
        self.leveler.as_ref()
    }

    /// Direct access to the flash device, for inspection in tests and
    /// experiments.
    pub fn device(&self) -> &FlashDevice {
        &self.dev
    }

    /// Total blocks currently tracked as sealed GC candidates, for
    /// invariant checks: every full block must be sealed or a frontier.
    pub fn sealed_blocks(&self) -> usize {
        self.planes.iter().map(|p| p.victims.len()).sum()
    }

    /// Per-plane snapshot `(free, sealed, valid_pages)` for diagnostics.
    pub fn plane_summary(&self) -> Vec<(usize, usize, u64)> {
        self.planes
            .iter()
            .enumerate()
            .map(|(p, st)| {
                let valid: u64 = (0..self.dev.geometry().blocks_per_plane)
                    .map(|i| {
                        let b = self.dev.geometry().block_in_plane(PlaneId(p as u32), i);
                        self.dev
                            .block(b)
                            .map(|blk| blk.valid_pages() as u64)
                            .unwrap_or(0)
                    })
                    .sum();
                (st.free.len(), st.victims.len(), valid)
            })
            .collect()
    }

    fn check_lba(&self, lba: u64) -> Result<()> {
        if lba < self.capacity_pages() {
            Ok(())
        } else {
            Err(ConvError::LbaOutOfRange {
                lba,
                capacity: self.capacity_pages(),
            })
        }
    }

    /// Reads logical page `lba`, issued at `now`. Returns the stored
    /// stamp and the completion instant (after any queueing behind GC
    /// work on the same plane).
    pub fn read(&mut self, lba: u64, now: Nanos) -> Result<(Stamp, Nanos)> {
        self.check_lba(lba)?;
        let ppa = self.map.lookup(lba).ok_or(ConvError::Unmapped(lba))?;
        let (stamp, done) = self.dev.read(ppa, now, OpOrigin::Host)?;
        // A mapped page is valid by the FTL invariant, so the stamp is
        // always present; a `None` here means the maps and flash state
        // disagree.
        let stamp = stamp.expect("mapped page must be valid");
        Ok((stamp, done))
    }

    /// Writes logical page `lba`, issued at `now`. Runs foreground GC
    /// first when the target plane is low on space; the returned
    /// completion reflects that queueing.
    pub fn write(&mut self, lba: u64, now: Nanos) -> Result<WriteOutcome> {
        self.check_lba(lba)?;
        if self.read_only {
            return Err(ConvError::ReadOnly);
        }
        let plane = self.pick_plane();
        // If the plane has no writable frontier, space must be made
        // before the program; otherwise GC runs after it, so the host
        // write does not wait behind its own collection traffic (real
        // FTLs run GC at lower priority than host I/O). An open frontier
        // is never full: `seal_if_full` closes it the moment the last
        // page programs.
        let st = &self.planes[plane.0 as usize];
        let frontier_ready = st.host_frontier.is_some() || !st.free.is_empty();
        if !frontier_ready {
            self.ensure_space(plane, now)?;
        }
        self.stamp_counter += 1;
        let stamp = encode_oob(self.stamp_counter, lba);
        let (ppa, done) = self.program_host(plane, stamp, now)?;
        if let Some(old) = self.map.bind(lba, ppa) {
            self.obs.inc(Ctr::ConvRemaps);
            self.invalidate_page(old)?;
        }
        if frontier_ready {
            self.ensure_space(plane, now)?;
        }
        Ok(WriteOutcome { done, stamp })
    }

    /// Programs `stamp` at `plane`'s host frontier, re-driving onto the
    /// next page (or a fresh frontier block) when a transient program
    /// failure burns the page. The stamp is reused on every attempt: it is
    /// the same write, just landing elsewhere.
    fn program_host(&mut self, plane: PlaneId, stamp: Stamp, now: Nanos) -> Result<(Ppa, Nanos)> {
        let mut attempts = 0u32;
        loop {
            let frontier = self.host_frontier(plane)?;
            match self.dev.program_next(frontier, stamp, now, OpOrigin::Host) {
                Ok((page, done)) => {
                    self.seal_if_full(plane, frontier, FrontierKind::Host);
                    if attempts > 0 {
                        self.stats.program_redrives += attempts as u64;
                        self.obs.add(Ctr::ConvRedrives, attempts as u64);
                        self.tracer.emit(
                            done,
                            FaultEvent::Redrive {
                                layer: "conv",
                                attempts,
                            },
                        );
                    }
                    return Ok((Ppa::new(frontier, page), done));
                }
                Err(e @ FlashError::ProgramFailed(_)) => {
                    attempts += 1;
                    // The burned page advanced the cursor; seal the block
                    // if that consumed its last page.
                    self.seal_if_full(plane, frontier, FrontierKind::Host);
                    if attempts > MAX_REDRIVES {
                        return Err(e.into());
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Deallocates logical page `lba` (TRIM). Metadata-only.
    pub fn trim(&mut self, lba: u64) -> Result<()> {
        self.check_lba(lba)?;
        if let Some(old) = self.map.unbind(lba) {
            self.invalidate_page(old)?;
        }
        Ok(())
    }

    /// Marks `ppa` invalid on flash and propagates the transition into
    /// the owning plane's victim index (a no-op for blocks that are not
    /// sealed: open frontiers and in-flight GC victims).
    fn invalidate_page(&mut self, ppa: Ppa) -> Result<()> {
        self.dev.invalidate(ppa)?;
        let plane = self.dev.geometry().plane_of(ppa.block);
        self.planes[plane.0 as usize]
            .victims
            .on_invalidate(ppa.block);
        Ok(())
    }

    /// Runs maintenance (background GC and static wear leveling) until
    /// `deadline`, starting at `now`. Returns the number of blocks
    /// reclaimed. Real conventional FTLs do this opportunistically and
    /// opaquely; experiments call it to model idle-time cleaning.
    pub fn maintenance(&mut self, now: Nanos, deadline: Nanos) -> Result<u32> {
        let mut reclaimed = 0;
        let mut t = now;
        // Round-robin planes, reclaiming the cheapest victims first, while
        // time remains and there is garbage to collect.
        'outer: loop {
            let mut progressed = false;
            for plane in 0..self.planes.len() as u32 {
                if t >= deadline {
                    break 'outer;
                }
                if self.plane_garbage_pages(PlaneId(plane)) == 0 {
                    continue;
                }
                // Only reclaim proactively while free space is below 3/4
                // of the plane; beyond that, background GC wastes erases.
                let free = self.planes[plane as usize].free.len() as u32;
                if free * 4 >= 3 * self.dev.geometry().blocks_per_plane {
                    continue;
                }
                let erases_before = self.stats.gc_erases;
                let (progress, end) =
                    self.incremental_gc(PlaneId(plane), t, self.dev.geometry().pages_per_block)?;
                if progress > 0 {
                    reclaimed += (self.stats.gc_erases - erases_before) as u32;
                    progressed = true;
                    t = end;
                }
            }
            if !progressed {
                break;
            }
        }
        self.maybe_wear_level(t)?;
        Ok(reclaimed)
    }

    /// Total invalid (garbage) pages in sealed blocks of `plane`,
    /// maintained incrementally by the victim index.
    fn plane_garbage_pages(&self, plane: PlaneId) -> u64 {
        self.planes[plane.0 as usize].victims.garbage()
    }

    /// Chooses the plane for the next host write: strict round-robin, so
    /// every plane receives the same write flow and therefore holds the
    /// same share of live data in expectation.
    ///
    /// Strict striping matters for write amplification: selecting planes
    /// by available space looks tempting but is unstable — GC equalizes
    /// the free-block count across planes regardless of their live-data
    /// load, so a plane drifting toward fullness keeps receiving writes
    /// and its GC victims approach 100% valid. Round-robin keeps planes
    /// statistically identical. If the round-robin choice is truly
    /// unwritable (worn-out blocks), fall back to any plane with space.
    fn pick_plane(&mut self) -> PlaneId {
        let n = self.planes.len() as u32;
        let start = self.next_plane % n;
        // Dither: occasionally (~1/7 of writes, at hashed positions)
        // skip one extra plane. Pure round-robin resonates with
        // workloads whose period divides the plane count (e.g. K tenants
        // writing fixed-size objects), binding each tenant to a fixed
        // plane subset and wedging planes whose tenant never deletes.
        // Real devices decorrelate through queueing; the hashed dither is
        // its deterministic stand-in. Hashing (rather than a fixed
        // modulus) keeps the skipped position itself from resonating.
        self.dither = self.dither.wrapping_add(1);
        let skip = self.dither.wrapping_mul(2654435761).is_multiple_of(7);
        let step = 1 + u32::from(skip);
        self.next_plane = (self.next_plane + step) % n;
        for off in 0..n {
            let p = (start + off) % n;
            let st = &self.planes[p as usize];
            // Open frontiers are never full (see `host_frontier`).
            let frontier_open = st.host_frontier.is_some();
            let has_garbage = st.victims.garbage() > 0;
            if frontier_open || !st.free.is_empty() || has_garbage {
                return PlaneId(p);
            }
        }
        PlaneId(start)
    }

    /// Pops the least-worn free block of `plane` (dynamic wear
    /// leveling), straight off the wear-ordered free list.
    fn alloc_block(&mut self, plane: PlaneId) -> Option<BlockId> {
        self.planes[plane.0 as usize].free.pop_least_worn()
    }

    fn host_frontier(&mut self, plane: PlaneId) -> Result<BlockId> {
        // An open frontier is never full (`seal_if_full` closes it as
        // soon as its last page programs), so no flash lookup is needed.
        if let Some(b) = self.planes[plane.0 as usize].host_frontier {
            return Ok(b);
        }
        let b = match self.alloc_block(plane) {
            Some(b) => b,
            None => {
                self.read_only = true;
                return Err(ConvError::ReadOnly);
            }
        };
        self.planes[plane.0 as usize].host_frontier = Some(b);
        Ok(b)
    }

    /// The plane's GC frontier, or `None` when the plane has neither an
    /// open frontier nor a free block. Does not flag the device
    /// read-only: GC falls back to other planes.
    fn gc_frontier(&mut self, plane: PlaneId) -> Result<Option<BlockId>> {
        // Same invariant as `host_frontier`: open implies not full.
        if let Some(b) = self.planes[plane.0 as usize].gc_frontier {
            return Ok(Some(b));
        }
        let b = match self.alloc_block(plane) {
            Some(b) => b,
            None => return Ok(None),
        };
        self.planes[plane.0 as usize].gc_frontier = Some(b);
        Ok(Some(b))
    }

    fn seal_if_full(&mut self, plane: PlaneId, block: BlockId, kind: FrontierKind) {
        let Some(entry) = self
            .dev
            .block(block)
            .ok()
            .filter(|b| b.is_full())
            .map(|b| sealed_entry(b, self.seal_seq + 1))
        else {
            return;
        };
        self.seal_seq += 1;
        let st = &mut self.planes[plane.0 as usize];
        match kind {
            FrontierKind::Host => st.host_frontier = None,
            FrontierKind::Gc => st.gc_frontier = None,
        }
        st.victims.insert(block, entry);
    }

    /// Runs foreground GC for `plane` as real FTLs do: *paced*. At or
    /// below the soft watermark (2× the hard one) each write relocates a
    /// small budget of pages, amortizing GC smoothly instead of stalling
    /// one victim's worth of copies on a single write — un-paced GC
    /// produces device-wide latency avalanches when symmetric traffic
    /// drives every plane to its watermark simultaneously. At or below
    /// the hard watermark the loop runs until space recovers (bounded).
    ///
    /// A plane legitimately sits at a low free count while its space is
    /// simply full of valid data (e.g. during the initial fill); in that
    /// case the write proceeds into the remaining free blocks and GC
    /// waits for garbage. True exhaustion — no free block when a frontier
    /// is needed — is detected at allocation time and turns the device
    /// read-only.
    fn ensure_space(&mut self, plane: PlaneId, now: Nanos) -> Result<()> {
        let hard = self.cfg.gc_watermark as usize;
        let soft = 2 * hard;
        // Gentle pacing: a few pages per write keeps up with steady-state
        // GC demand (a victim frees `invalid` pages for `valid` copies,
        // so ~2-4 copies per host write suffice) while keeping the soft
        // band narrow — free blocks parked above the watermark subtract
        // from the spare space that keeps victims empty.
        let pace = (self.dev.geometry().pages_per_block / 64).max(4);
        if self.planes[plane.0 as usize].free.len() <= soft {
            self.stats.gc_runs += 1;
            let _ = self.incremental_gc(plane, now, pace)?;
        }
        // Emergency: restore the hard watermark before writing, still in
        // bounded slices so one write never absorbs a whole victim's
        // relocation storm.
        for _ in 0..(4 * self.dev.geometry().blocks_per_plane) {
            if self.planes[plane.0 as usize].free.len() > hard {
                return Ok(());
            }
            self.stats.gc_runs += 1;
            if self.incremental_gc(plane, now, 8 * pace)?.0 == 0 {
                // No reclaimable garbage yet: let the write consume free
                // blocks until some accumulates.
                return Ok(());
            }
        }
        Ok(())
    }

    /// Advances `plane`'s garbage collection by up to `budget` relocated
    /// pages (continuing any in-progress victim), erasing the victim once
    /// empty. Returns `(progress, done)`: the number of pages moved plus
    /// blocks freed (zero means no progress was possible) and the
    /// completion instant of the last operation issued (`now` if none).
    fn incremental_gc(&mut self, plane: PlaneId, now: Nanos, budget: u32) -> Result<(u32, Nanos)> {
        let _p = bh_obs::phase!("gc");
        let mut done = now;
        let mut progress = 0u32;
        let mut moved = 0u32;
        while moved < budget {
            let victim = match self.planes[plane.0 as usize].gc_victim {
                Some(v) => v,
                None => match self.select_victim(plane, now) {
                    Some(v) => {
                        self.obs.inc(Ctr::ConvGcVictims);
                        let st = &mut self.planes[plane.0 as usize];
                        st.gc_victim = Some(v);
                        st.gc_copied = 0;
                        st.gc_scan = 0;
                        if self.tracer.enabled() {
                            let span = self.tracer.begin_span();
                            self.planes[plane.0 as usize].gc_span = span;
                            let blk = self.dev.block(v)?;
                            let (valid, invalid) = (blk.valid_pages(), blk.invalid_pages());
                            self.tracer.emit_span(
                                now,
                                span,
                                ConvEvent::GcBegin {
                                    plane: plane.0,
                                    victim: v.0,
                                    valid,
                                    invalid,
                                },
                            );
                        }
                        v
                    }
                    None => return Ok((progress, done)),
                },
            };
            // Relocate the victim's next valid page, if any. The scan
            // resumes from the last position handled: earlier pages can
            // only have left the valid state (copied out or overwritten
            // by the host), never re-entered it, so skipping them is
            // exact. A burned copy leaves the cursor in place and the
            // same source page is found again on the re-drive.
            let scan = self.planes[plane.0 as usize].gc_scan;
            let next = self.dev.block(victim)?.first_valid_from(scan);
            match next {
                Some((page, _stamp)) => {
                    self.planes[plane.0 as usize].gc_scan = page;
                    let src = Ppa::new(victim, page);
                    let lba = self
                        .map
                        .reverse(src)
                        .expect("valid page must have a reverse mapping");
                    let (dst_plane, dst_block) = match self.pick_gc_destination()? {
                        Some(d) => d,
                        None => return Ok((progress, done)), // No room anywhere.
                    };
                    let (dst_page, copy_done) = match self.dev.copy_page(src, dst_block, now) {
                        Ok((p, _stamp, d)) => (p, d),
                        Err(FlashError::ProgramFailed(_)) => {
                            // The destination page burned; the source is
                            // intact. Seal the frontier if the burn filled
                            // it, charge the attempt against the pace
                            // budget, and re-drive on the next turn.
                            self.seal_if_full(dst_plane, dst_block, FrontierKind::Gc);
                            self.stats.program_redrives += 1;
                            self.obs.inc(Ctr::ConvRedrives);
                            self.tracer.emit(
                                now,
                                FaultEvent::Redrive {
                                    layer: "conv",
                                    attempts: 1,
                                },
                            );
                            moved += 1;
                            continue;
                        }
                        Err(e) => return Err(e.into()),
                    };
                    done = done.max(copy_done);
                    let dst = Ppa::new(dst_block, dst_page);
                    self.map.relocate(lba, src, dst);
                    self.invalidate_page(src)?;
                    self.seal_if_full(dst_plane, dst_block, FrontierKind::Gc);
                    self.stats.gc_pages_copied += 1;
                    self.obs.inc(Ctr::ConvGcPagesMigrated);
                    self.planes[plane.0 as usize].gc_copied += 1;
                    moved += 1;
                    progress += 1;
                }
                None => {
                    // Victim fully relocated: erase and recycle it.
                    let outcome = self.dev.erase(victim, now)?;
                    done = done.max(outcome.done);
                    if !outcome.retired {
                        let wear = self.dev.block(victim)?.wear();
                        self.planes[plane.0 as usize].free.push(victim, wear);
                    }
                    let st = &mut self.planes[plane.0 as usize];
                    st.gc_victim = None;
                    let (span, copied) = (st.gc_span, st.gc_copied);
                    st.gc_span = SpanId::NONE;
                    st.gc_copied = 0;
                    if self.tracer.enabled() {
                        self.tracer.emit_span(
                            outcome.done,
                            span,
                            ConvEvent::GcEnd {
                                plane: plane.0,
                                pages_copied: copied,
                                retired: outcome.retired,
                            },
                        );
                    }
                    self.stats.gc_erases += 1;
                    progress += 1;
                }
            }
        }
        Ok((progress, done))
    }

    /// The next GC relocation destination: rotates across planes so GC
    /// programs parallelize. Returns `None` when no plane can take a
    /// page.
    fn pick_gc_destination(&mut self) -> Result<Option<(PlaneId, BlockId)>> {
        let planes = self.planes.len() as u32;
        for off in 0..planes {
            let cand = PlaneId((self.gc_next_plane + off) % planes);
            if let Some(b) = self.gc_frontier(cand)? {
                self.gc_next_plane = (cand.0 + 1) % planes;
                return Ok(Some((cand, b)));
            }
        }
        Ok(None)
    }

    /// Picks and removes a GC victim from `plane`'s sealed list.
    ///
    /// Declines victims with no invalid pages — erasing those moves data
    /// without reclaiming anything, so GC could not make progress.
    fn select_victim(&mut self, plane: PlaneId, now: Nanos) -> Option<BlockId> {
        let pages_per_block = self.dev.geometry().pages_per_block;
        let victims = &mut self.planes[plane.0 as usize].victims;
        let victim = Self::peek_victim(victims, now, pages_per_block)?;
        victims.remove(victim);
        Some(victim)
    }

    /// The block [`select_victim`](Self::select_victim) would take,
    /// without removing it from the index.
    fn peek_victim(victims: &mut VictimIndex, now: Nanos, pages_per_block: u32) -> Option<BlockId> {
        let victim = victims.peek_policy(now, pages_per_block)?;
        if victims.invalid_of(victim) == 0 {
            // The policy's best choice still reclaims nothing; for greedy
            // this means *no* victim reclaims anything. For FIFO and
            // cost-benefit, fall back to the greediest victim before
            // giving up.
            let (greedy_victim, invalid) = victims.peek_max_invalid()?;
            if invalid == 0 {
                return None;
            }
            return Some(greedy_victim);
        }
        Some(victim)
    }

    /// Copies `victim`'s valid pages forward and erases it. Relocation
    /// destinations rotate across planes (controllers move GC data over
    /// any channel), so GC work parallelizes instead of stalling the
    /// victim's plane. Returns the erase completion instant.
    /// `count_as_gc` attributes the work to GC rather than wear leveling
    /// in the stats.
    fn relocate_and_erase(
        &mut self,
        plane: PlaneId,
        victim: BlockId,
        now: Nanos,
        count_as_gc: bool,
    ) -> Result<Nanos> {
        let entries: Vec<(u32, Stamp)> = self.dev.block(victim)?.valid_entries().collect();
        let planes = self.planes.len() as u32;
        let mut moved = 0u64;
        for (page, _stamp) in entries {
            let src = Ppa::new(victim, page);
            let lba = self
                .map
                .reverse(src)
                .expect("valid page must have a reverse mapping");
            let mut attempts = 0u32;
            let (dst_plane, dst_block, dst_page) = loop {
                // Pick the next destination plane with usable GC space.
                let mut found = None;
                for off in 0..planes {
                    let cand = PlaneId((self.gc_next_plane + off) % planes);
                    if let Some(b) = self.gc_frontier(cand)? {
                        self.gc_next_plane = (cand.0 + 1) % planes;
                        found = Some((cand, b));
                        break;
                    }
                }
                let (dst_plane, dst_block) = match found {
                    Some(x) => x,
                    None => {
                        self.read_only = true;
                        return Err(ConvError::ReadOnly);
                    }
                };
                match self.dev.copy_page(src, dst_block, now) {
                    Ok((dst_page, _s, _d)) => break (dst_plane, dst_block, dst_page),
                    Err(e @ FlashError::ProgramFailed(_)) => {
                        attempts += 1;
                        self.seal_if_full(dst_plane, dst_block, FrontierKind::Gc);
                        self.stats.program_redrives += 1;
                        self.obs.inc(Ctr::ConvRedrives);
                        if attempts > MAX_REDRIVES {
                            return Err(e.into());
                        }
                    }
                    Err(e) => return Err(e.into()),
                }
            };
            let dst = Ppa::new(dst_block, dst_page);
            self.map.relocate(lba, src, dst);
            self.invalidate_page(src)?;
            self.seal_if_full(dst_plane, dst_block, FrontierKind::Gc);
            moved += 1;
        }
        let outcome = self.dev.erase(victim, now)?;
        if outcome.retired {
            // Block is gone; capacity shrinks. Losing too many blocks in a
            // plane eventually surfaces as ReadOnly from ensure_space.
        } else {
            let wear = self.dev.block(victim)?.wear();
            self.planes[plane.0 as usize].free.push(victim, wear);
        }
        if count_as_gc {
            self.stats.gc_pages_copied += moved;
            self.obs.add(Ctr::ConvGcPagesMigrated, moved);
            self.stats.gc_erases += 1;
        }
        Ok(outcome.done)
    }

    /// Runs one static wear-leveling migration if the spread warrants it.
    fn maybe_wear_level(&mut self, now: Nanos) -> Result<()> {
        let Some(leveler) = self.leveler else {
            return Ok(());
        };
        let (min, max, _) = self.dev.wear_spread();
        if !leveler.should_level(min, max) {
            return Ok(());
        }
        // Migrate the coldest sealed block (minimal wear): its data has
        // sat still while other blocks cycled, so freeing it puts a
        // low-wear block back into rotation.
        let mut coldest: Option<(PlaneId, BlockId, u32)> = None;
        for (p, st) in self.planes.iter().enumerate() {
            if let Some((b, wear)) = st.victims.peek_min_wear() {
                if coldest.map(|(_, _, w)| wear < w).unwrap_or(true) {
                    coldest = Some((PlaneId(p as u32), b, wear));
                }
            }
        }
        if let Some((plane, block, _)) = coldest {
            self.planes[plane.0 as usize].victims.remove(block);
            let pages = self.dev.block(block)?.valid_pages() as u64;
            self.relocate_and_erase(plane, block, now, false)?;
            self.stats.wl_migrations += 1;
            self.tracer.emit(
                now,
                ConvEvent::WearLevel {
                    block: block.0,
                    pages_moved: pages as u32,
                },
            );
            if let Some(l) = self.leveler.as_mut() {
                l.note_migration(pages);
            }
        }
        Ok(())
    }

    /// Simulates a power loss at `now` followed by the recovery scan.
    ///
    /// All volatile FTL state — mapping table, frontiers, free lists,
    /// in-flight GC — is discarded, then rebuilt the only way a
    /// page-mapped FTL without a durable journal can: by reading the OOB
    /// metadata of *every* programmed page in the device. The block
    /// interface exposes nothing about which blocks matter, so the scan
    /// cost is proportional to physical occupancy (including garbage GC
    /// has not yet erased), not to live data. Returns the scan completion
    /// instant and the number of pages read.
    pub fn power_cycle(&mut self, now: Nanos) -> Result<(Nanos, u64)> {
        // Close any in-flight GC episode so trace replay stays balanced:
        // the episode died with the power, copying nothing further.
        for p in 0..self.planes.len() {
            let st = &mut self.planes[p];
            if st.gc_victim.take().is_some() {
                let (span, copied) = (st.gc_span, st.gc_copied);
                st.gc_span = SpanId::NONE;
                st.gc_copied = 0;
                if self.tracer.enabled() && span != SpanId::NONE {
                    self.tracer.emit_span(
                        now,
                        span,
                        ConvEvent::GcEnd {
                            plane: p as u32,
                            pages_copied: copied,
                            retired: false,
                        },
                    );
                }
            }
        }
        let geo = *self.dev.geometry();
        self.map = MappingTable::new(self.cfg.logical_pages(), geo);
        let logical = self.cfg.logical_pages();
        let mut best: Vec<Option<(u64, Ppa)>> = vec![None; logical as usize];
        let mut scanned = 0u64;
        let mut done = now;
        let mut max_seq = 0u64;
        for block in geo.blocks() {
            let (status, cursor) = {
                let blk = self.dev.block(block)?;
                (blk.status(), blk.cursor())
            };
            if status == BlockStatus::Bad {
                continue;
            }
            for page in 0..cursor {
                let ppa = Ppa::new(block, page);
                // All reads issue at `now`: planes scan in parallel while
                // pages within a plane queue — the same resource model as
                // any other work.
                let (stamp, t) = self.dev.read(ppa, now, OpOrigin::Internal)?;
                done = done.max(t);
                scanned += 1;
                let Some(stamp) = stamp else { continue };
                let (seq, lba) = decode_oob(stamp);
                max_seq = max_seq.max(seq);
                if lba >= logical {
                    continue;
                }
                match best[lba as usize] {
                    Some((s, _)) if s >= seq => {
                        // Stale duplicate: mark it dead so GC reclaims it.
                        self.dev.invalidate(ppa)?;
                    }
                    Some((_, old)) => {
                        self.dev.invalidate(old)?;
                        best[lba as usize] = Some((seq, ppa));
                    }
                    None => best[lba as usize] = Some((seq, ppa)),
                }
            }
        }
        for (lba, slot) in best.iter().enumerate() {
            if let Some((_, ppa)) = slot {
                let _ = self.map.bind(lba as u64, *ppa);
            }
        }
        // Rebuild the allocator: empty good blocks are free, every
        // non-empty block is sealed — the FTL does not resume a mid-block
        // frontier after an unclean shutdown. Re-sealing in ascending
        // block order reproduces the candidate order the pre-index
        // rebuild produced.
        for st in &mut self.planes {
            st.free.clear();
            st.victims.clear();
            st.host_frontier = None;
            st.gc_frontier = None;
        }
        for block in geo.blocks() {
            let blk = self.dev.block(block)?;
            if blk.status() == BlockStatus::Bad {
                continue;
            }
            let plane = geo.plane_of(block);
            if blk.is_empty() {
                let wear = blk.wear();
                self.planes[plane.0 as usize].free.push(block, wear);
            } else {
                let entry = sealed_entry(blk, self.seal_seq + 1);
                self.seal_seq += 1;
                self.planes[plane.0 as usize].victims.insert(block, entry);
            }
        }
        self.stamp_counter = max_seq;
        self.read_only = false;
        self.stats.replays += 1;
        self.stats.replay_pages_scanned += scanned;
        self.tracer.emit(
            done,
            FaultEvent::Replay {
                layer: "conv",
                scanned,
                recovered: self.map.mapped_pages(),
            },
        );
        Ok((done, scanned))
    }

    /// Cross-checks the incremental hot-path indexes against the flash
    /// state they mirror: entry counters, set/heap memberships, garbage
    /// totals, free-list wear ordering, and that indexed victim
    /// selection agrees with a naive full scan over the seal-order
    /// candidate list (including the invalid-page fallback). Takes
    /// `&mut` because peeking settles lazily-deleted heap keys.
    /// Test-support API.
    #[doc(hidden)]
    pub fn verify_hotpath_invariants(&mut self, now: Nanos) -> std::result::Result<(), String> {
        let pages_per_block = self.dev.geometry().pages_per_block;
        let dev = &self.dev;
        for (p, st) in self.planes.iter_mut().enumerate() {
            st.victims
                .check(|b| {
                    let blk = dev.block(b).expect("tracked block exists");
                    (
                        blk.valid_pages(),
                        blk.invalid_pages(),
                        blk.wear(),
                        blk.erased_at_ns(),
                    )
                })
                .map_err(|e| format!("plane {p} victim index: {e}"))?;
            st.free
                .check(|b| dev.block(b).map(|blk| blk.wear()).unwrap_or(u32::MAX))
                .map_err(|e| format!("plane {p} free list: {e}"))?;
            let fast = Self::peek_victim(&mut st.victims, now, pages_per_block);
            let oracle = st.victims.oracle_select(now, pages_per_block);
            if fast != oracle {
                return Err(format!(
                    "plane {p}: indexed victim {fast:?} != oracle {oracle:?}"
                ));
            }
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy)]
enum FrontierKind {
    Host,
    Gc,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_flash::{CellKind, FlashConfig, Geometry};

    fn ssd(op: f64) -> ConvSsd {
        ConvSsd::new(ConvConfig::new(
            FlashConfig::tlc(Geometry::small_test()),
            op,
        ))
        .unwrap()
    }

    #[test]
    fn write_then_read_returns_stamp() {
        let mut s = ssd(0.25);
        let w = s.write(3, Nanos::ZERO).unwrap();
        let (stamp, done) = s.read(3, w.done).unwrap();
        assert_eq!(stamp, w.stamp);
        assert!(done > w.done);
    }

    #[test]
    fn overwrite_returns_latest_stamp() {
        let mut s = ssd(0.25);
        let w1 = s.write(3, Nanos::ZERO).unwrap();
        let w2 = s.write(3, w1.done).unwrap();
        assert_ne!(w1.stamp, w2.stamp);
        let (stamp, _) = s.read(3, w2.done).unwrap();
        assert_eq!(stamp, w2.stamp);
    }

    #[test]
    fn read_of_unwritten_lba_fails() {
        let mut s = ssd(0.25);
        assert_eq!(s.read(0, Nanos::ZERO), Err(ConvError::Unmapped(0)));
    }

    #[test]
    fn lba_bounds_are_enforced() {
        let mut s = ssd(0.25);
        let cap = s.capacity_pages();
        assert!(matches!(
            s.write(cap, Nanos::ZERO),
            Err(ConvError::LbaOutOfRange { .. })
        ));
        assert!(matches!(
            s.read(cap, Nanos::ZERO),
            Err(ConvError::LbaOutOfRange { .. })
        ));
    }

    #[test]
    fn trim_unmaps() {
        let mut s = ssd(0.25);
        s.write(3, Nanos::ZERO).unwrap();
        s.trim(3).unwrap();
        assert_eq!(s.read(3, Nanos::ZERO), Err(ConvError::Unmapped(3)));
        // Trimming an unmapped LBA is fine.
        s.trim(3).unwrap();
    }

    /// Fill the device completely, then overwrite at random: GC must kick
    /// in and all data must survive relocation.
    #[test]
    fn steady_state_overwrites_preserve_data() {
        let mut s = ssd(0.25);
        let cap = s.capacity_pages();
        let mut t = Nanos::ZERO;
        let mut expect: Vec<Stamp> = vec![0; cap as usize];
        for lba in 0..cap {
            let w = s.write(lba, t).unwrap();
            expect[lba as usize] = w.stamp;
            t = w.done;
        }
        // Overwrite 4x capacity in a fixed pseudo-random pattern.
        let mut x = 12345u64;
        for _ in 0..4 * cap {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let lba = x % cap;
            let w = s.write(lba, t).unwrap();
            expect[lba as usize] = w.stamp;
            t = w.done;
        }
        assert!(s.ftl_stats().gc_runs > 0, "GC never ran");
        for lba in 0..cap {
            let (stamp, done) = s.read(lba, t).unwrap();
            assert_eq!(stamp, expect[lba as usize], "LBA {lba} corrupted");
            t = done;
        }
        // Conservation: mapped pages equals capacity.
        assert_eq!(s.map.mapped_pages(), cap);
    }

    #[test]
    fn lower_op_means_higher_write_amplification() {
        // A geometry large enough that the implicit reserve is a small
        // fraction of capacity, so the OP sweep dominates the spare space.
        let geo = Geometry {
            channels: 2,
            dies_per_channel: 1,
            planes_per_die: 2,
            blocks_per_plane: 40,
            pages_per_block: 32,
            page_bytes: 4096,
        };
        let mut results = Vec::new();
        for op in [0.0, 0.28] {
            let mut s = ConvSsd::new(ConvConfig::new(FlashConfig::tlc(geo), op)).unwrap();
            let cap = s.capacity_pages();
            let mut t = Nanos::ZERO;
            for lba in 0..cap {
                t = s.write(lba, t).unwrap().done;
            }
            let mut x = 7u64;
            for _ in 0..6 * cap {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                t = s.write(x % cap, t).unwrap().done;
            }
            results.push(s.write_amplification());
        }
        assert!(
            results[0] > results[1] * 1.5,
            "WA at 0% OP ({}) should far exceed WA at 28% OP ({})",
            results[0],
            results[1]
        );
        assert!(results[1] >= 1.0);
    }

    #[test]
    fn maintenance_reclaims_garbage_in_idle_time() {
        let mut s = ssd(0.10);
        let cap = s.capacity_pages();
        let mut t = Nanos::ZERO;
        for lba in 0..cap {
            t = s.write(lba, t).unwrap().done;
        }
        // Trim half the space: the fill blocks are sealed, so this creates
        // garbage squarely in GC's victim set.
        for lba in 0..cap / 2 {
            s.trim(lba).unwrap();
        }
        let reclaimed = s.maintenance(t, t + Nanos::from_secs(10)).unwrap();
        assert!(reclaimed > 0, "idle maintenance reclaimed nothing");
        // Untrimmed data still intact afterwards.
        let (stamp, _) = s.read(cap - 1, t + Nanos::from_secs(10)).unwrap();
        assert!(stamp > 0);
    }

    #[test]
    fn wear_out_drives_device_read_only() {
        let mut cfg = ConvConfig::new(
            FlashConfig {
                geometry: Geometry::small_test(),
                cell: CellKind::Tlc,
                endurance_override: Some(6),
            },
            0.10,
        );
        cfg.gc_policy = GcPolicy::Greedy;
        let mut s = ConvSsd::new(cfg).unwrap();
        let cap = s.capacity_pages();
        let mut t = Nanos::ZERO;
        let mut died = false;
        'outer: for round in 0..200 {
            for lba in 0..cap {
                match s.write((lba * 7 + round) % cap, t) {
                    Ok(w) => t = w.done,
                    Err(ConvError::ReadOnly) => {
                        died = true;
                        break 'outer;
                    }
                    Err(e) => panic!("unexpected error {e}"),
                }
            }
        }
        assert!(died, "device with endurance 6 should wear out");
        assert!(s.is_read_only());
        assert!(s.device().bad_blocks() > 0);
    }

    #[test]
    fn wear_leveling_bounds_spread() {
        let mut cfg = ConvConfig::new(FlashConfig::tlc(Geometry::small_test()), 0.10);
        cfg.wear_level_gap = Some(4);
        let mut s = ConvSsd::new(cfg).unwrap();
        let cap = s.capacity_pages();
        let mut t = Nanos::ZERO;
        for lba in 0..cap {
            t = s.write(lba, t).unwrap().done;
        }
        // Hammer a small hot range: without static WL, cold blocks would
        // never cycle.
        for i in 0..20 * cap {
            t = s.write(i % (cap / 8), t).unwrap().done;
            if i % cap == 0 {
                s.maintenance(t, t + Nanos::from_millis(50)).unwrap();
            }
        }
        assert!(
            s.ftl_stats().wl_migrations > 0,
            "static wear leveling never triggered"
        );
    }

    #[test]
    fn gc_policies_all_survive_steady_state() {
        for policy in [GcPolicy::Greedy, GcPolicy::CostBenefit, GcPolicy::Fifo] {
            let mut cfg = ConvConfig::new(FlashConfig::tlc(Geometry::small_test()), 0.15);
            cfg.gc_policy = policy;
            let mut s = ConvSsd::new(cfg).unwrap();
            let cap = s.capacity_pages();
            let mut t = Nanos::ZERO;
            for lba in 0..cap {
                t = s.write(lba, t).unwrap().done;
            }
            let mut x = 99u64;
            for _ in 0..4 * cap {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                t = s.write(x % cap, t).unwrap().done;
            }
            assert!(s.write_amplification() > 1.0, "{policy:?}");
            // Spot-check integrity.
            let (stamp, _) = s.read(0, t).unwrap();
            assert!(stamp > 0, "{policy:?}");
        }
    }

    #[test]
    fn gc_episodes_trace_as_balanced_spans() {
        let mut s = ssd(0.10);
        s.set_tracer(Tracer::ring(1 << 16));
        let cap = s.capacity_pages();
        let mut t = Nanos::ZERO;
        for lba in 0..cap {
            t = s.write(lba, t).unwrap().done;
        }
        let mut x = 5u64;
        for _ in 0..3 * cap {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t = s.write(x % cap, t).unwrap().done;
        }
        let events = s.tracer().events();
        let episodes = bh_trace::replay::gc_episodes(&events).unwrap();
        let closed = episodes.iter().filter(|e| e.end.is_some()).count();
        assert!(closed > 0, "no GC episode completed");
        for ep in &episodes {
            if let Some(end) = ep.end {
                assert!(end >= ep.begin);
                // Pages can be invalidated by host overwrites mid-episode,
                // so the migrated count never exceeds the initial valid set.
                assert!(ep.pages_copied <= ep.valid);
            }
        }
    }

    #[test]
    fn writes_survive_program_faults() {
        let mut s = ssd(0.25);
        s.install_faults(bh_faults::FaultConfig::new(0xFA).with_program_fail_ppm(60_000));
        let cap = s.capacity_pages();
        let mut t = Nanos::ZERO;
        let mut expect: Vec<Stamp> = vec![0; cap as usize];
        for round in 0..3u64 {
            for lba in 0..cap {
                let w = s.write((lba + round) % cap, t).unwrap();
                expect[((lba + round) % cap) as usize] = w.stamp;
                t = w.done;
            }
        }
        assert!(
            s.ftl_stats().program_redrives > 0,
            "6% program-failure rate never forced a re-drive"
        );
        for lba in 0..cap {
            let (stamp, done) = s.read(lba, t).unwrap();
            assert_eq!(stamp, expect[lba as usize], "LBA {lba} corrupted");
            t = done;
        }
    }

    #[test]
    fn power_cycle_rebuilds_mapping_from_oob() {
        let mut s = ssd(0.25);
        let cap = s.capacity_pages();
        let mut t = Nanos::ZERO;
        let mut expect: Vec<Stamp> = vec![0; cap as usize];
        for lba in 0..cap {
            let w = s.write(lba, t).unwrap();
            expect[lba as usize] = w.stamp;
            t = w.done;
        }
        // Overwrite a subset so stale versions exist in sealed blocks.
        let mut x = 11u64;
        for _ in 0..cap {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let lba = x % cap;
            let w = s.write(lba, t).unwrap();
            expect[lba as usize] = w.stamp;
            t = w.done;
        }
        let (done, scanned) = s.power_cycle(t).unwrap();
        assert!(done > t, "recovery scan must consume device time");
        assert!(scanned >= cap, "scan covers at least the live data");
        assert_eq!(s.ftl_stats().replays, 1);
        for lba in 0..cap {
            let (stamp, d) = s.read(lba, t).unwrap();
            assert_eq!(stamp, expect[lba as usize], "LBA {lba} lost in replay");
            t = d;
        }
        // The device keeps working after recovery.
        let w = s.write(0, t).unwrap();
        assert!(w.stamp > expect[0]);
    }

    #[test]
    fn power_cycle_closes_inflight_gc_span() {
        let mut s = ssd(0.0);
        s.set_tracer(Tracer::ring(1 << 16));
        let cap = s.capacity_pages();
        let mut t = Nanos::ZERO;
        for lba in 0..cap {
            t = s.write(lba, t).unwrap().done;
        }
        let mut x = 5u64;
        for _ in 0..2 * cap {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t = s.write(x % cap, t).unwrap().done;
        }
        s.power_cycle(t).unwrap();
        // Replay checker must not report a dangling begin-without-end.
        let events = s.tracer().events();
        let episodes = bh_trace::replay::gc_episodes(&events).unwrap();
        for ep in &episodes {
            assert!(ep.end.is_some(), "GC episode left open across power loss");
        }
    }

    #[test]
    fn foreground_gc_delays_the_triggering_write() {
        let mut s = ssd(0.0);
        let cap = s.capacity_pages();
        let mut t = Nanos::ZERO;
        let mut max_latency = Nanos::ZERO;
        for lba in 0..cap {
            let w = s.write(lba, t).unwrap();
            max_latency = max_latency.max(w.done.saturating_sub(t));
            t = w.done;
        }
        let baseline = max_latency;
        let mut x = 3u64;
        let mut max_overwrite_latency = Nanos::ZERO;
        for _ in 0..2 * cap {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let w = s.write(x % cap, t).unwrap();
            max_overwrite_latency = max_overwrite_latency.max(w.done.saturating_sub(t));
            t = w.done;
        }
        assert!(
            max_overwrite_latency > baseline,
            "GC-laden writes ({max_overwrite_latency}) should exceed fill writes ({baseline})"
        );
    }
}
