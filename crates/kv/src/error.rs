//! Error type for the KV store.

/// Errors returned by KV-store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// The referenced backend file does not exist.
    NoSuchFile(u64),
    /// A read past the end of a backend file.
    ShortRead {
        /// File identifier.
        file: u64,
        /// Requested range start.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Actual file length.
        file_len: u64,
    },
    /// The backend device failed (out of space, worn out, ...).
    Device(String),
    /// An on-media structure failed to decode — corruption or a format
    /// bug.
    Corrupt(&'static str),
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::NoSuchFile(id) => write!(f, "no such file {id}"),
            KvError::ShortRead {
                file,
                offset,
                len,
                file_len,
            } => write!(
                f,
                "short read: file {file} [{offset}, +{len}) beyond length {file_len}"
            ),
            KvError::Device(msg) => write!(f, "device error: {msg}"),
            KvError::Corrupt(what) => write!(f, "corrupt {what}"),
        }
    }
}

impl std::error::Error for KvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = KvError::ShortRead {
            file: 1,
            offset: 10,
            len: 20,
            file_len: 15,
        };
        assert!(e.to_string().contains("short read"));
    }
}
