//! Storage backends: the same file API over either SSD interface.
//!
//! The store writes immutable files (SSTs) and an append-only log (WAL)
//! through [`StorageBackend`]. The two implementations differ exactly
//! where the paper says the interfaces differ:
//!
//! - [`ConvBackend`] places file pages at logical block addresses of a
//!   conventional SSD. The LBA allocator recycles freed addresses
//!   (LIFO), so flash blocks underneath accumulate a mixture of WAL
//!   pages, hot L0 files, and cold bottom-level files — lifetimes the
//!   device FTL cannot separate (§2.4: "information about applications is
//!   the key bottleneck"). Device GC then copies the long-lived pages
//!   around, producing the ~5× device WA the paper cites for RocksDB.
//! - [`ZnsBackend`] appends file pages into zones selected by a lifetime
//!   class derived from the file's role (WAL, SST level) — the ZenFS
//!   design. Compaction deletes whole files, whole zones die together,
//!   and resets reclaim them without copying: device WA ≈ 1.2×.
//!
//! Both backends buffer the partial tail page in memory (as real engines
//! do) and expose `sync` for durability points; on the conventional
//! device a tail sync rewrites the same LBA, on ZNS it must burn a fresh
//! zone slot — an honest asymmetry of the interfaces.

use crate::error::KvError;
use crate::Result;
use bh_conv::ConvSsd;
use bh_host::{HostError, LifetimeClass, ZoneAllocator, ZonedLocation};
use bh_metrics::Nanos;
use bh_obs::Obs;
use bh_trace::Tracer;
use bh_zns::backend::ZonedDevice;
use bh_zns::{ZnsDevice, ZoneId, ZoneState};
use std::collections::HashMap;

/// Identifier for a backend file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// What role a file plays — the lifetime knowledge ZNS placement uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileHint {
    /// Write-ahead log: hottest, dies at the next flush.
    Wal,
    /// Sorted-run file at an LSM level; higher levels live longer.
    Sst {
        /// The LSM level the file belongs to.
        level: u32,
    },
}

impl FileHint {
    /// The lifetime class used for zone placement.
    fn class(self) -> LifetimeClass {
        match self {
            FileHint::Wal => LifetimeClass(0),
            FileHint::Sst { level } => LifetimeClass(1 + level),
        }
    }
}

/// Byte-oriented file storage over a simulated SSD.
///
/// Files are append-only; reads may come from the in-memory tail buffer
/// (no device I/O) or from flushed pages (device reads). All methods
/// return virtual completion instants.
pub trait StorageBackend {
    /// Creates an empty file with a lifetime hint.
    fn create(&mut self, hint: FileHint) -> FileId;

    /// Appends bytes; complete pages are written to the device.
    fn append(&mut self, f: FileId, data: &[u8], now: Nanos) -> Result<Nanos>;

    /// Forces the partial tail page (if any) to the device — a
    /// durability point.
    fn sync(&mut self, f: FileId, now: Nanos) -> Result<Nanos>;

    /// Reads `len` bytes at `offset`.
    fn read(&mut self, f: FileId, offset: u64, len: u64, now: Nanos) -> Result<(Vec<u8>, Nanos)>;

    /// Current file length in bytes.
    fn len(&self, f: FileId) -> Result<u64>;

    /// Deletes the file, releasing its device space.
    fn delete(&mut self, f: FileId, now: Nanos) -> Result<Nanos>;

    /// Opportunity for background space maintenance (zone reclaim).
    /// Returns the completion instant (`now` if nothing ran).
    fn maintenance(&mut self, now: Nanos) -> Result<Nanos>;

    /// Bytes of the file guaranteed to survive a crash: flushed complete
    /// pages plus any synced tail prefix.
    fn durable_len(&self, f: FileId) -> Result<u64>;

    /// Device page size in bytes.
    fn page_bytes(&self) -> u32;

    /// Device-level write amplification observed so far.
    fn device_write_amplification(&self) -> f64;

    /// Total pages the host asked the device to write (for app-level WA).
    fn host_pages_written(&self) -> u64;

    /// Installs a tracer on the underlying device(s). Backends without
    /// instrumentation may ignore it.
    fn set_tracer(&mut self, _tracer: Tracer) {}

    /// Installs a live counter registry on the underlying device(s).
    /// Backends without instrumentation may ignore it.
    fn set_obs(&mut self, _obs: Obs) {}
}

/// In-memory file body plus flush bookkeeping shared by both backends.
#[derive(Debug)]
struct FileBuf<Loc> {
    hint: FileHint,
    content: Vec<u8>,
    /// Device locations of flushed complete pages, in page order.
    pages: Vec<Loc>,
    /// Bytes of the tail that were force-synced (devalued on growth).
    synced_tail: Option<Loc>,
    /// Bytes guaranteed on the device: complete flushed pages plus any
    /// synced tail prefix. Data past this point dies in a crash.
    durable: u64,
}

impl<Loc> FileBuf<Loc> {
    fn new(hint: FileHint) -> Self {
        FileBuf {
            hint,
            content: Vec::new(),
            pages: Vec::new(),
            synced_tail: None,
            durable: 0,
        }
    }
}

fn check_read(content_len: u64, f: FileId, offset: u64, len: u64) -> Result<()> {
    if offset + len > content_len {
        return Err(KvError::ShortRead {
            file: f.0,
            offset,
            len,
            file_len: content_len,
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Conventional backend
// ---------------------------------------------------------------------------

/// File storage over a conventional block-interface SSD.
pub struct ConvBackend {
    ssd: ConvSsd,
    files: HashMap<FileId, FileBuf<u64>>,
    next_id: u64,
    /// Freed LBAs, reused LIFO — the address churn that defeats any
    /// lifetime inference by the device.
    free_lbas: Vec<u64>,
    next_lba: u64,
    host_pages: u64,
    /// Counter driving hashed free-LBA reuse in no-discard mode.
    reuse_counter: u64,
    /// Issue TRIM for deleted files' pages. Defaults to true (the
    /// device's best case). Many production filesystems run without
    /// online discard (mount-option defaults, performance regressions,
    /// passthrough layers that drop it), leaving dead data mapped until
    /// the LBA is rewritten — the regime behind the paper's cited 5x
    /// RocksDB device WA. `without_trim()` models that.
    trim_on_delete: bool,
}

impl ConvBackend {
    /// Creates a backend over `ssd`.
    pub fn new(ssd: ConvSsd) -> Self {
        ConvBackend {
            ssd,
            files: HashMap::new(),
            next_id: 0,
            free_lbas: Vec::new(),
            next_lba: 0,
            host_pages: 0,
            reuse_counter: 0,
            trim_on_delete: true,
        }
    }

    /// Disables TRIM on file delete (no-online-discard deployments); see
    /// the field documentation for why this is a realistic configuration.
    pub fn without_trim(mut self) -> Self {
        self.trim_on_delete = false;
        self
    }

    /// The underlying SSD, for statistics.
    pub fn ssd(&self) -> &ConvSsd {
        &self.ssd
    }

    fn alloc_lba(&mut self) -> Result<u64> {
        if !self.free_lbas.is_empty() {
            if self.trim_on_delete {
                return Ok(self.free_lbas.pop().expect("non-empty"));
            }
            // Without discard the allocator has aged free space of mixed
            // provenance; model the resulting decorrelated reuse by
            // picking a hashed position instead of strict LIFO.
            self.reuse_counter = self.reuse_counter.wrapping_add(1);
            let idx = (self.reuse_counter.wrapping_mul(0x9E3779B97F4A7C15) >> 33) as usize
                % self.free_lbas.len();
            return Ok(self.free_lbas.swap_remove(idx));
        }
        if self.next_lba < self.ssd.capacity_pages() {
            let l = self.next_lba;
            self.next_lba += 1;
            return Ok(l);
        }
        Err(KvError::Device(
            "conventional SSD out of logical space".into(),
        ))
    }

    fn write_page(&mut self, lba: u64, now: Nanos) -> Result<Nanos> {
        let out = self
            .ssd
            .write(lba, now)
            .map_err(|e| KvError::Device(e.to_string()))?;
        self.host_pages += 1;
        Ok(out.done)
    }

    fn flush_complete_pages(&mut self, f: FileId, now: Nanos) -> Result<Nanos> {
        let page = self.page_bytes() as u64;
        let mut t = now;
        loop {
            let (need_flush, rewrite_tail) = {
                let fb = self.files.get(&f).ok_or(KvError::NoSuchFile(f.0))?;
                let complete = fb.content.len() as u64 / page;
                (
                    (fb.pages.len() as u64) < complete,
                    fb.synced_tail.is_some() && (fb.pages.len() as u64) < complete,
                )
            };
            if !need_flush {
                return Ok(t);
            }
            // A previously synced tail page is now complete: rewrite it in
            // place (the conventional interface allows that).
            let lba = if rewrite_tail {
                let fb = self.files.get_mut(&f).unwrap();
                fb.synced_tail.take().expect("checked above")
            } else {
                self.alloc_lba()?
            };
            t = self.write_page(lba, t)?;
            let fb = self.files.get_mut(&f).unwrap();
            fb.pages.push(lba);
            fb.durable = fb.durable.max(fb.pages.len() as u64 * page);
        }
    }
}

impl StorageBackend for ConvBackend {
    fn create(&mut self, hint: FileHint) -> FileId {
        let id = FileId(self.next_id);
        self.next_id += 1;
        self.files.insert(id, FileBuf::new(hint));
        id
    }

    fn append(&mut self, f: FileId, data: &[u8], now: Nanos) -> Result<Nanos> {
        self.files
            .get_mut(&f)
            .ok_or(KvError::NoSuchFile(f.0))?
            .content
            .extend_from_slice(data);
        self.flush_complete_pages(f, now)
    }

    fn sync(&mut self, f: FileId, now: Nanos) -> Result<Nanos> {
        let page = self.page_bytes() as u64;
        let (has_tail, existing) = {
            let fb = self.files.get(&f).ok_or(KvError::NoSuchFile(f.0))?;
            (
                !(fb.content.len() as u64).is_multiple_of(page),
                fb.synced_tail,
            )
        };
        if !has_tail {
            return Ok(now);
        }
        // Rewrite the tail at its existing LBA, or allocate one.
        let lba = match existing {
            Some(l) => l,
            None => {
                let l = self.alloc_lba()?;
                self.files.get_mut(&f).unwrap().synced_tail = Some(l);
                l
            }
        };
        let done = self.write_page(lba, now)?;
        let fb = self.files.get_mut(&f).unwrap();
        fb.durable = fb.content.len() as u64;
        Ok(done)
    }

    fn read(&mut self, f: FileId, offset: u64, len: u64, now: Nanos) -> Result<(Vec<u8>, Nanos)> {
        let page = self.page_bytes() as u64;
        let (data, lbas) = {
            let fb = self.files.get(&f).ok_or(KvError::NoSuchFile(f.0))?;
            check_read(fb.content.len() as u64, f, offset, len)?;
            let data = fb.content[offset as usize..(offset + len) as usize].to_vec();
            let first = offset / page;
            let last = (offset + len.max(1) - 1) / page;
            let lbas: Vec<u64> = (first..=last)
                .filter_map(|p| fb.pages.get(p as usize).copied())
                .collect();
            (data, lbas)
        };
        let mut t = now;
        for lba in lbas {
            let (_, done) = self
                .ssd
                .read(lba, now)
                .map_err(|e| KvError::Device(e.to_string()))?;
            t = t.max(done);
        }
        Ok((data, t))
    }

    fn len(&self, f: FileId) -> Result<u64> {
        Ok(self
            .files
            .get(&f)
            .ok_or(KvError::NoSuchFile(f.0))?
            .content
            .len() as u64)
    }

    fn delete(&mut self, f: FileId, now: Nanos) -> Result<Nanos> {
        let fb = self.files.remove(&f).ok_or(KvError::NoSuchFile(f.0))?;
        for lba in fb.pages.into_iter().chain(fb.synced_tail) {
            if self.trim_on_delete {
                self.ssd
                    .trim(lba)
                    .map_err(|e| KvError::Device(e.to_string()))?;
            }
            self.free_lbas.push(lba);
        }
        Ok(now)
    }

    fn maintenance(&mut self, _now: Nanos) -> Result<Nanos> {
        // The conventional device garbage-collects internally, on its own
        // opaque schedule; there is nothing for the host to do — which is
        // the paper's point.
        Ok(_now)
    }

    fn durable_len(&self, f: FileId) -> Result<u64> {
        Ok(self.files.get(&f).ok_or(KvError::NoSuchFile(f.0))?.durable)
    }

    fn page_bytes(&self) -> u32 {
        self.ssd.page_bytes()
    }

    fn device_write_amplification(&self) -> f64 {
        self.ssd.write_amplification()
    }

    fn host_pages_written(&self) -> u64 {
        self.host_pages
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.ssd.set_tracer(tracer);
    }

    fn set_obs(&mut self, obs: Obs) {
        self.ssd.set_obs(obs);
    }
}

// ---------------------------------------------------------------------------
// ZNS backend (ZenFS-like)
// ---------------------------------------------------------------------------

/// File storage over a zoned device with lifetime-class zone placement.
///
/// Generic over the substrate ([`ZnsDevice`] by default; bh-zbd's
/// durable emulator works identically).
pub struct ZnsBackend<D: ZonedDevice = ZnsDevice> {
    dev: D,
    alloc: ZoneAllocator,
    files: HashMap<FileId, FileBuf<ZonedLocation>>,
    next_id: u64,
    /// Live page count per zone.
    live: Vec<u64>,
    /// Per zone: (file, page index, offset) of pages written there.
    registry: Vec<Vec<(FileId, u64, u64)>>,
    host_pages: u64,
    relocated: u64,
    stamp: u64,
}

impl<D: ZonedDevice> ZnsBackend<D> {
    /// Creates a backend over `dev`.
    pub fn new(dev: D) -> Self {
        let zones = dev.num_zones() as usize;
        ZnsBackend {
            dev,
            alloc: ZoneAllocator::new(),
            files: HashMap::new(),
            next_id: 0,
            live: vec![0; zones],
            registry: vec![Vec::new(); zones],
            host_pages: 0,
            relocated: 0,
            stamp: 0,
        }
    }

    /// The underlying zoned device, for statistics.
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// Pages relocated by host reclaim so far.
    pub fn relocated_pages(&self) -> u64 {
        self.relocated
    }

    fn append_page(&mut self, class: LifetimeClass, now: Nanos) -> Result<(ZonedLocation, Nanos)> {
        self.stamp += 1;
        let stamp = self.stamp;
        match self.alloc.append(&mut self.dev, class, stamp, now) {
            Ok(ok) => Ok(ok),
            Err(HostError::NoFreeZone) => {
                let t = self.reclaim(now)?;
                self.alloc
                    .append(&mut self.dev, class, stamp, t)
                    .map_err(|e| KvError::Device(e.to_string()))
            }
            Err(e) => Err(KvError::Device(e.to_string())),
        }
    }

    fn flush_complete_pages(&mut self, f: FileId, now: Nanos) -> Result<Nanos> {
        let page = self.page_bytes() as u64;
        let mut t = now;
        loop {
            let (need_flush, class, old_tail) = {
                let fb = self.files.get(&f).ok_or(KvError::NoSuchFile(f.0))?;
                let complete = fb.content.len() as u64 / page;
                (
                    (fb.pages.len() as u64) < complete,
                    fb.hint.class(),
                    fb.synced_tail,
                )
            };
            if !need_flush {
                return Ok(t);
            }
            // A synced partial tail cannot be extended in place on ZNS:
            // the completed page goes to a fresh slot and the synced copy
            // becomes garbage.
            if let Some(old) = old_tail {
                self.live[old.zone.0 as usize] -= 1;
                self.files.get_mut(&f).unwrap().synced_tail = None;
            }
            let (loc, done) = self.append_page(class, t)?;
            t = done;
            self.host_pages += 1;
            let page_idx = {
                let fb = self.files.get_mut(&f).unwrap();
                fb.pages.push(loc);
                fb.durable = fb.durable.max(fb.pages.len() as u64 * page);
                (fb.pages.len() - 1) as u64
            };
            self.live[loc.zone.0 as usize] += 1;
            self.registry[loc.zone.0 as usize].push((f, page_idx, loc.offset));
        }
    }

    /// Reclaims space: resets fully dead zones; if none, relocates the
    /// most-garbage zone's survivors. Returns the completion instant.
    fn reclaim(&mut self, now: Nanos) -> Result<Nanos> {
        let mut t = now;
        // First pass: free resets (the common ZenFS case — whole-file
        // deletes killed whole zones).
        let dead: Vec<ZoneId> = self
            .dev
            .zone_report()
            .iter()
            .filter(|z| z.state() == ZoneState::Full && self.live[z.id().0 as usize] == 0)
            .map(|z| z.id())
            .collect();
        for z in &dead {
            t = self
                .dev
                .reset(*z, t)
                .map_err(|e| KvError::Device(e.to_string()))?;
            self.registry[z.0 as usize].clear();
            self.alloc.release(*z);
        }
        if !dead.is_empty() {
            return Ok(t);
        }
        // Second pass: relocate the fullest-garbage zone.
        let victim = self
            .dev
            .zone_report()
            .iter()
            .filter(|z| z.state() == ZoneState::Full)
            .map(|z| (z.id(), z.write_pointer() - self.live[z.id().0 as usize]))
            .filter(|&(_, g)| g > 0)
            .max_by_key(|&(_, g)| g)
            .map(|(id, _)| id)
            .ok_or_else(|| KvError::Device("ZNS device out of space".into()))?;
        let entries = std::mem::take(&mut self.registry[victim.0 as usize]);
        for (file, page_idx, offset) in entries {
            let live = self
                .files
                .get(&file)
                .and_then(|fb| fb.pages.get(page_idx as usize))
                .map(|loc| loc.zone == victim && loc.offset == offset)
                .unwrap_or(false);
            if !live {
                continue;
            }
            let class = self.files[&file].hint.class();
            self.stamp += 1;
            let (new_loc, done) = self
                .alloc
                .append(&mut self.dev, class, self.stamp, t)
                .map_err(|e| KvError::Device(e.to_string()))?;
            t = done;
            self.files.get_mut(&file).unwrap().pages[page_idx as usize] = new_loc;
            self.live[victim.0 as usize] -= 1;
            self.live[new_loc.zone.0 as usize] += 1;
            self.registry[new_loc.zone.0 as usize].push((file, page_idx, new_loc.offset));
            self.relocated += 1;
            self.host_pages += 1; // Relocation is host-issued I/O here.
        }
        t = self
            .dev
            .reset(victim, t)
            .map_err(|e| KvError::Device(e.to_string()))?;
        self.alloc.release(victim);
        Ok(t)
    }
}

impl<D: ZonedDevice> StorageBackend for ZnsBackend<D> {
    fn create(&mut self, hint: FileHint) -> FileId {
        let id = FileId(self.next_id);
        self.next_id += 1;
        self.files.insert(id, FileBuf::new(hint));
        id
    }

    fn append(&mut self, f: FileId, data: &[u8], now: Nanos) -> Result<Nanos> {
        self.files
            .get_mut(&f)
            .ok_or(KvError::NoSuchFile(f.0))?
            .content
            .extend_from_slice(data);
        self.flush_complete_pages(f, now)
    }

    fn sync(&mut self, f: FileId, now: Nanos) -> Result<Nanos> {
        let page = self.page_bytes() as u64;
        let (has_tail, class, old_tail) = {
            let fb = self.files.get(&f).ok_or(KvError::NoSuchFile(f.0))?;
            (
                !(fb.content.len() as u64).is_multiple_of(page),
                fb.hint.class(),
                fb.synced_tail,
            )
        };
        if !has_tail {
            return Ok(now);
        }
        // Each tail sync burns a fresh slot; the previous synced copy (if
        // any) becomes garbage. This is the ZNS WAL-sync cost.
        if let Some(old) = old_tail {
            self.live[old.zone.0 as usize] -= 1;
        }
        let (loc, done) = self.append_page(class, now)?;
        self.host_pages += 1;
        self.live[loc.zone.0 as usize] += 1;
        let fb = self.files.get_mut(&f).unwrap();
        fb.synced_tail = Some(loc);
        fb.durable = fb.content.len() as u64;
        Ok(done)
    }

    fn read(&mut self, f: FileId, offset: u64, len: u64, now: Nanos) -> Result<(Vec<u8>, Nanos)> {
        let page = self.page_bytes() as u64;
        let (data, locs) = {
            let fb = self.files.get(&f).ok_or(KvError::NoSuchFile(f.0))?;
            check_read(fb.content.len() as u64, f, offset, len)?;
            let data = fb.content[offset as usize..(offset + len) as usize].to_vec();
            let first = offset / page;
            let last = (offset + len.max(1) - 1) / page;
            let locs: Vec<ZonedLocation> = (first..=last)
                .filter_map(|p| fb.pages.get(p as usize).copied())
                .collect();
            (data, locs)
        };
        let mut t = now;
        for loc in locs {
            let (_, done) = self
                .dev
                .read(loc.zone, loc.offset, now)
                .map_err(|e| KvError::Device(e.to_string()))?;
            t = t.max(done);
        }
        Ok((data, t))
    }

    fn len(&self, f: FileId) -> Result<u64> {
        Ok(self
            .files
            .get(&f)
            .ok_or(KvError::NoSuchFile(f.0))?
            .content
            .len() as u64)
    }

    fn delete(&mut self, f: FileId, now: Nanos) -> Result<Nanos> {
        let fb = self.files.remove(&f).ok_or(KvError::NoSuchFile(f.0))?;
        for loc in fb.pages.into_iter().chain(fb.synced_tail) {
            self.live[loc.zone.0 as usize] -= 1;
        }
        Ok(now)
    }

    fn maintenance(&mut self, now: Nanos) -> Result<Nanos> {
        // Reset any fully dead zones; cheap and host-scheduled.
        let dead: Vec<ZoneId> = self
            .dev
            .zone_report()
            .iter()
            .filter(|z| z.state() == ZoneState::Full && self.live[z.id().0 as usize] == 0)
            .map(|z| z.id())
            .collect();
        let mut t = now;
        for z in dead {
            t = self
                .dev
                .reset(z, t)
                .map_err(|e| KvError::Device(e.to_string()))?;
            self.registry[z.0 as usize].clear();
            self.alloc.release(z);
        }
        Ok(t)
    }

    fn durable_len(&self, f: FileId) -> Result<u64> {
        Ok(self.files.get(&f).ok_or(KvError::NoSuchFile(f.0))?.durable)
    }

    fn page_bytes(&self) -> u32 {
        self.dev.page_bytes()
    }

    fn device_write_amplification(&self) -> f64 {
        self.dev.flash_stats().write_amplification()
    }

    fn host_pages_written(&self) -> u64 {
        self.host_pages
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.alloc.set_tracer(tracer.clone());
        self.dev.set_tracer(tracer);
    }

    fn set_obs(&mut self, obs: Obs) {
        self.alloc.set_obs(obs.clone());
        self.dev.set_obs(obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_conv::ConvConfig;
    use bh_flash::{FlashConfig, Geometry};
    use bh_zns::ZnsConfig;

    fn conv() -> ConvBackend {
        let geo = Geometry {
            channels: 2,
            dies_per_channel: 1,
            planes_per_die: 2,
            blocks_per_plane: 16,
            pages_per_block: 16,
            page_bytes: 4096,
        };
        ConvBackend::new(ConvSsd::new(ConvConfig::new(FlashConfig::tlc(geo), 0.15)).unwrap())
    }

    fn zns() -> ZnsBackend {
        let geo = Geometry {
            channels: 2,
            dies_per_channel: 1,
            planes_per_die: 2,
            blocks_per_plane: 16,
            pages_per_block: 16,
            page_bytes: 4096,
        };
        let mut cfg = ZnsConfig::new(FlashConfig::tlc(geo), 4);
        cfg.max_active_zones = 12;
        cfg.max_open_zones = 12;
        ZnsBackend::new(ZnsDevice::new(cfg).unwrap())
    }

    fn roundtrip(backend: &mut dyn StorageBackend) {
        let f = backend.create(FileHint::Sst { level: 0 });
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let t = backend.append(f, &payload, Nanos::ZERO).unwrap();
        assert_eq!(backend.len(f).unwrap(), 10_000);
        let (back, done) = backend.read(f, 100, 5_000, t).unwrap();
        assert_eq!(&back[..], &payload[100..5_100]);
        assert!(done >= t);
    }

    #[test]
    fn conv_roundtrip() {
        roundtrip(&mut conv());
    }

    #[test]
    fn zns_roundtrip() {
        roundtrip(&mut zns());
    }

    fn sync_then_grow(backend: &mut dyn StorageBackend) -> u64 {
        let f = backend.create(FileHint::Wal);
        let mut t = Nanos::ZERO;
        // 100 bytes, sync, 100 bytes, sync, then grow past a page.
        t = backend.append(f, &[1u8; 100], t).unwrap();
        t = backend.sync(f, t).unwrap();
        t = backend.append(f, &[2u8; 100], t).unwrap();
        t = backend.sync(f, t).unwrap();
        t = backend.append(f, &vec![3u8; 8192], t).unwrap();
        let (data, _) = backend.read(f, 0, 200, t).unwrap();
        assert_eq!(data[0], 1);
        assert_eq!(data[150], 2);
        backend.host_pages_written()
    }

    #[test]
    fn conv_sync_rewrites_in_place() {
        let mut b = conv();
        let pages = sync_then_grow(&mut b);
        // 2 tail syncs + rewrite-on-completion + 2 complete pages: the
        // LBA count stays small because rewrites reuse the address.
        assert!(pages >= 4, "pages {pages}");
    }

    #[test]
    fn zns_sync_burns_fresh_slots() {
        let mut b = zns();
        let pages = sync_then_grow(&mut b);
        assert!(pages >= 4, "pages {pages}");
        // The superseded synced tails are garbage now, visible as
        // live < written in the WAL zone.
        let total_live: u64 = b.live.iter().sum();
        assert!(total_live < pages);
    }

    fn delete_frees_space(backend: &mut dyn StorageBackend) {
        let mut t = Nanos::ZERO;
        // Churn files until well past the device's raw capacity; deletes
        // must keep space available.
        for round in 0..40 {
            let f = backend.create(FileHint::Sst { level: 0 });
            t = backend.append(f, &vec![round as u8; 16 * 4096], t).unwrap();
            t = backend.delete(f, t).unwrap();
            t = backend.maintenance(t).unwrap();
        }
    }

    #[test]
    fn conv_delete_frees_space() {
        delete_frees_space(&mut conv());
    }

    #[test]
    fn zns_delete_frees_space() {
        delete_frees_space(&mut zns());
    }

    #[test]
    fn zns_levels_get_distinct_zones() {
        let mut b = zns();
        let f0 = b.create(FileHint::Sst { level: 0 });
        let f1 = b.create(FileHint::Sst { level: 3 });
        b.append(f0, &[0u8; 4096], Nanos::ZERO).unwrap();
        b.append(f1, &[1u8; 4096], Nanos::ZERO).unwrap();
        let z0 = b.files[&f0].pages[0].zone;
        let z1 = b.files[&f1].pages[0].zone;
        assert_ne!(z0, z1, "levels must not share zones");
    }

    #[test]
    fn short_read_is_detected() {
        let mut b = conv();
        let f = b.create(FileHint::Wal);
        b.append(f, &[0u8; 10], Nanos::ZERO).unwrap();
        assert!(matches!(
            b.read(f, 5, 10, Nanos::ZERO),
            Err(KvError::ShortRead { .. })
        ));
        assert!(matches!(
            b.read(FileId(99), 0, 1, Nanos::ZERO),
            Err(KvError::NoSuchFile(99))
        ));
    }

    #[test]
    fn zns_reclaim_relocates_survivors_when_needed() {
        let mut b = zns();
        let mut t = Nanos::ZERO;
        // One long-lived file interleaved with short-lived churn in the
        // SAME class so zones end up partially live.
        let keeper = b.create(FileHint::Sst { level: 0 });
        let mut dead_files = Vec::new();
        for i in 0..30 {
            t = b.append(keeper, &vec![9u8; 4096], t).unwrap();
            let f = b.create(FileHint::Sst { level: 0 });
            t = b.append(f, &vec![i as u8; 2 * 4096], t).unwrap();
            dead_files.push(f);
        }
        for f in dead_files {
            t = b.delete(f, t).unwrap();
        }
        // Keep writing: reclaim must relocate the keeper's pages.
        for _ in 0..40 {
            let f = b.create(FileHint::Sst { level: 0 });
            t = b.append(f, &vec![7u8; 2 * 4096], t).unwrap();
            t = b.delete(f, t).unwrap();
        }
        let (data, _) = b.read(keeper, 0, 30 * 4096, t).unwrap();
        assert!(data.iter().all(|&x| x == 9));
    }
}
