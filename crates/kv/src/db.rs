//! The LSM database: WAL + memtable + leveled SSTs.
//!
//! A deliberately RocksDB-shaped engine: puts append to a write-ahead log
//! and a sorted memtable; full memtables flush to level-0 tables; leveled
//! compaction keeps each level within a size target growing by a fixed
//! multiplier. Reads consult memtable → L0 (newest first) → L1+ (one
//! table per level by key range).
//!
//! Every operation takes and returns virtual instants, so experiment E5
//! can measure read tail latency while compaction traffic hits the
//! device, and E6 can compare device-level write amplification across
//! backends.

use crate::backend::{FileHint, FileId, StorageBackend};
use crate::memtable::{Memtable, Mutation};
use crate::sst::{decode_entry, encode_entry, Sst, SstBuilder};
use crate::Result;
use bh_metrics::Nanos;
use bh_obs::{Ctr, Obs};
use bh_trace::{KvEvent, Tracer};

/// Tuning parameters for a [`Db`].
#[derive(Debug, Clone, Copy)]
pub struct DbConfig {
    /// Flush the memtable at this resident size.
    pub memtable_bytes: usize,
    /// Compact L0 when it holds more than this many files.
    pub l0_files: usize,
    /// Size target for L1; level `n` targets `level_base_bytes ×
    /// multiplier^(n-1)`.
    pub level_base_bytes: u64,
    /// Per-level size multiplier (RocksDB default: 10).
    pub level_multiplier: u64,
    /// Cut SST files at this many data bytes during compaction.
    pub sst_bytes: u64,
    /// Data-block size inside SSTs.
    pub block_bytes: usize,
    /// Sync the WAL every N puts (group commit).
    pub sync_every: u32,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            memtable_bytes: 256 << 10,
            l0_files: 4,
            level_base_bytes: 1 << 20,
            level_multiplier: 10,
            sst_bytes: 256 << 10,
            block_bytes: 4096,
            sync_every: 64,
        }
    }
}

/// Activity counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct DbStats {
    /// Puts and deletes accepted.
    pub writes: u64,
    /// Gets served.
    pub reads: u64,
    /// Memtable flushes.
    pub flushes: u64,
    /// Compactions run.
    pub compactions: u64,
    /// Application payload bytes written (keys + values).
    pub app_bytes: u64,
    /// Encoded record bytes appended to the write-ahead log.
    pub wal_bytes: u64,
    /// Bytes written into SSTs by flushes and compactions.
    pub sst_bytes_written: u64,
}

impl DbStats {
    /// Application-level write amplification: SST bytes per payload byte.
    pub fn app_write_amplification(&self) -> f64 {
        if self.app_bytes == 0 {
            return 1.0;
        }
        self.sst_bytes_written as f64 / self.app_bytes as f64
    }
}

/// An LSM key-value store over a [`StorageBackend`].
///
/// # Examples
///
/// ```
/// use bh_kv::{ConvBackend, Db, DbConfig};
/// use bh_conv::{ConvConfig, ConvSsd};
/// use bh_flash::{FlashConfig, Geometry};
/// use bh_metrics::Nanos;
///
/// let geo = Geometry::experiment(16);
/// let ssd = ConvSsd::new(ConvConfig::new(FlashConfig::tlc(geo), 0.1)).unwrap();
/// let mut db = Db::new(ConvBackend::new(ssd), DbConfig::default()).unwrap();
/// let t = db.put(b"k".to_vec(), b"v".to_vec(), Nanos::ZERO).unwrap();
/// let (v, _) = db.get(b"k", t).unwrap();
/// assert_eq!(v, Some(b"v".to_vec()));
/// ```
pub struct Db<B: StorageBackend> {
    backend: B,
    cfg: DbConfig,
    mem: Memtable,
    wal: FileId,
    puts_since_sync: u32,
    /// `levels[0]` holds overlapping files newest-last; deeper levels are
    /// sorted by key and non-overlapping.
    levels: Vec<Vec<Sst>>,
    seq: u64,
    stats: DbStats,
    tracer: Tracer,
    /// Live counter registry; WAL/compaction byte bumps mirror `stats`.
    obs: Obs,
    /// Reusable WAL-record encode buffer, so each put/delete serializes
    /// without allocating.
    record: Vec<u8>,
}

impl<B: StorageBackend> Db<B> {
    /// Opens an empty database over `backend`.
    pub fn new(mut backend: B, cfg: DbConfig) -> Result<Self> {
        let wal = backend.create(FileHint::Wal);
        Ok(Db {
            backend,
            cfg,
            mem: Memtable::new(),
            wal,
            puts_since_sync: 0,
            levels: vec![Vec::new()],
            seq: 0,
            stats: DbStats::default(),
            tracer: Tracer::disabled(),
            obs: Obs::disabled(),
            record: Vec::new(),
        })
    }

    /// Installs a tracer, cascading it into the storage backend so LSM
    /// events and device events share one ordered stream.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.backend.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// The tracer currently installed (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Installs a live counter registry, cascading it into the storage
    /// backend so LSM-level and device-level counters share one handle.
    pub fn set_obs(&mut self, obs: Obs) {
        self.backend.set_obs(obs.clone());
        self.obs = obs;
    }

    /// Activity counters.
    pub fn stats(&self) -> &DbStats {
        &self.stats
    }

    /// The storage backend, for device-level statistics.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Files per level, for shape assertions in tests.
    pub fn level_file_counts(&self) -> Vec<usize> {
        self.levels.iter().map(Vec::len).collect()
    }

    fn write_internal(&mut self, key: Vec<u8>, mutation: Mutation, now: Nanos) -> Result<Nanos> {
        self.seq += 1;
        self.stats.writes += 1;
        self.stats.app_bytes += (key.len() + mutation.as_ref().map(Vec::len).unwrap_or(0)) as u64;
        let mut record = std::mem::take(&mut self.record);
        record.clear();
        encode_entry(&mut record, &key, self.seq, &mutation);
        self.stats.wal_bytes += record.len() as u64;
        self.obs.add(Ctr::KvWalBytes, record.len() as u64);
        let append = self.backend.append(self.wal, &record, now);
        self.record = record;
        let mut t = append?;
        self.puts_since_sync += 1;
        if self.puts_since_sync >= self.cfg.sync_every {
            t = self.backend.sync(self.wal, t)?;
            self.puts_since_sync = 0;
        }
        self.mem.insert(key, self.seq, mutation);
        if self.mem.approximate_bytes() >= self.cfg.memtable_bytes {
            t = self.flush(t)?;
            t = self.maybe_compact(t)?;
        }
        Ok(t)
    }

    /// Stores `value` under `key`. Returns the completion instant,
    /// including any flush/compaction the write triggered (write stalls
    /// are real in LSM stores).
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>, now: Nanos) -> Result<Nanos> {
        self.write_internal(key, Some(value), now)
    }

    /// Deletes `key` (writes a tombstone).
    pub fn delete(&mut self, key: Vec<u8>, now: Nanos) -> Result<Nanos> {
        self.write_internal(key, None, now)
    }

    /// Looks up `key`. Returns the value (or `None`) and the completion
    /// instant of the device reads involved.
    pub fn get(&mut self, key: &[u8], now: Nanos) -> Result<(Option<Vec<u8>>, Nanos)> {
        self.stats.reads += 1;
        if let Some((_seq, mutation)) = self.mem.get(key) {
            return Ok((mutation.clone(), now));
        }
        // L0: newest file first (files are pushed in flush order).
        let mut t = now;
        for sst in self.levels[0].iter().rev() {
            let (hit, done) = sst.get(&mut self.backend, key, t)?;
            t = done;
            if let Some((_seq, mutation)) = hit {
                return Ok((mutation, t));
            }
        }
        // Deeper levels: at most one file covers the key.
        for level in self.levels.iter().skip(1) {
            let idx = level.partition_point(|s| s.largest.as_slice() < key);
            if let Some(sst) = level.get(idx) {
                let (hit, done) = sst.get(&mut self.backend, key, t)?;
                t = done;
                if let Some((_seq, mutation)) = hit {
                    return Ok((mutation, t));
                }
            }
        }
        Ok((None, t))
    }

    /// Flushes the memtable into a new L0 table and starts a fresh WAL.
    /// No-op when the memtable is empty.
    pub fn flush(&mut self, now: Nanos) -> Result<Nanos> {
        if self.mem.is_empty() {
            return Ok(now);
        }
        let entries = self.mem.take();
        let mut builder = SstBuilder::new(&mut self.backend, 0, self.cfg.block_bytes);
        let mut t = now;
        for (key, (seq, mutation)) in &entries {
            t = builder.add(&mut self.backend, key, *seq, mutation, t)?;
        }
        let (sst, done) = builder.finish(&mut self.backend, t)?;
        t = done;
        self.stats.sst_bytes_written += sst.data_bytes;
        if self.tracer.enabled() {
            let page = self.backend.page_bytes() as u64;
            self.tracer.emit(
                t,
                KvEvent::Flush {
                    entries: entries.len() as u64,
                    pages: sst.data_bytes.div_ceil(page),
                },
            );
        }
        self.levels[0].push(sst);
        self.stats.flushes += 1;
        // The WAL's contents are now durable in the SST; replace it.
        let old = self.wal;
        self.wal = self.backend.create(FileHint::Wal);
        self.puts_since_sync = 0;
        t = self.backend.delete(old, t)?;
        t = self.backend.maintenance(t)?;
        Ok(t)
    }

    /// Size target for `level` (1-based depth below L0).
    fn level_target(&self, level: usize) -> u64 {
        let mut target = self.cfg.level_base_bytes;
        for _ in 1..level {
            target = target.saturating_mul(self.cfg.level_multiplier);
        }
        target
    }

    fn level_bytes(&self, level: usize) -> u64 {
        self.levels
            .get(level)
            .map(|l| l.iter().map(|s| s.data_bytes).sum())
            .unwrap_or(0)
    }

    /// Runs compactions until every level is within its target. Returns
    /// the completion instant.
    pub fn maybe_compact(&mut self, now: Nanos) -> Result<Nanos> {
        let mut t = now;
        // Bounded: each iteration strictly reduces upper-level debt.
        for _ in 0..64 {
            if self.levels[0].len() > self.cfg.l0_files {
                t = self.compact_level(0, t)?;
                continue;
            }
            let mut compacted = false;
            for level in 1..self.levels.len() {
                if self.level_bytes(level) > self.level_target(level) {
                    t = self.compact_level(level, t)?;
                    compacted = true;
                    break;
                }
            }
            if !compacted {
                return Ok(t);
            }
        }
        Ok(t)
    }

    /// Compacts `level` into `level + 1`.
    fn compact_level(&mut self, level: usize, now: Nanos) -> Result<Nanos> {
        if self.levels.len() <= level + 1 {
            self.levels.push(Vec::new());
        }
        // Inputs: all of L0 (overlapping), or the oldest-range file of a
        // deeper level.
        let upper: Vec<Sst> = if level == 0 {
            std::mem::take(&mut self.levels[0])
        } else {
            // Rotate through the level by taking the file with the
            // smallest key (simple deterministic pick).
            vec![self.levels[level].remove(0)]
        };
        let smallest = upper
            .iter()
            .map(|s| s.smallest.as_slice())
            .min()
            .expect("inputs");
        let largest = upper
            .iter()
            .map(|s| s.largest.as_slice())
            .max()
            .expect("inputs");
        // Overlapping files in the level below.
        let lower_level = &mut self.levels[level + 1];
        let mut lower = Vec::new();
        let mut i = 0;
        while i < lower_level.len() {
            if lower_level[i].overlaps(smallest, largest) {
                lower.push(lower_level.remove(i));
            } else {
                i += 1;
            }
        }

        // Merge: newest version of each key wins. Upper level is newer
        // than lower; within L0, later files are newer. Sequence numbers
        // decide.
        let mut t = now;
        let mut merged: std::collections::BTreeMap<Vec<u8>, (u64, Mutation)> =
            std::collections::BTreeMap::new();
        for sst in lower.iter().chain(upper.iter()) {
            let (entries, done) = sst.scan(&mut self.backend, t)?;
            t = done;
            for (key, seq, mutation) in entries {
                match merged.get(&key) {
                    Some(&(existing_seq, _)) if existing_seq >= seq => {}
                    _ => {
                        merged.insert(key, (seq, mutation));
                    }
                }
            }
        }
        // Drop tombstones when compacting into the bottom of the tree —
        // nothing below can resurrect the key.
        let is_bottom =
            self.levels.len() == level + 2 || self.levels[level + 2..].iter().all(Vec::is_empty);

        // Write outputs, cutting files at sst_bytes.
        let out_level = (level + 1) as u32;
        let mut outputs: Vec<Sst> = Vec::new();
        let mut builder: Option<SstBuilder> = None;
        for (key, (seq, mutation)) in merged {
            if is_bottom && mutation.is_none() {
                continue;
            }
            let b = builder.get_or_insert_with(|| {
                SstBuilder::new(&mut self.backend, out_level, self.cfg.block_bytes)
            });
            t = b.add(&mut self.backend, &key, seq, &mutation, t)?;
            if b.data_bytes() >= self.cfg.sst_bytes {
                let (sst, done) = builder
                    .take()
                    .expect("just used")
                    .finish(&mut self.backend, t)?;
                t = done;
                self.stats.sst_bytes_written += sst.data_bytes;
                self.obs.add(Ctr::KvCompactionBytes, sst.data_bytes);
                outputs.push(sst);
            }
        }
        if let Some(b) = builder {
            if b.entries() > 0 {
                let (sst, done) = b.finish(&mut self.backend, t)?;
                t = done;
                self.stats.sst_bytes_written += sst.data_bytes;
                self.obs.add(Ctr::KvCompactionBytes, sst.data_bytes);
                outputs.push(sst);
            }
        }

        // Install outputs sorted by key; delete inputs.
        if self.tracer.enabled() {
            let page = self.backend.page_bytes() as u64;
            let pages_out: u64 = outputs.iter().map(|s| s.data_bytes.div_ceil(page)).sum();
            self.tracer.emit(
                t,
                KvEvent::Compaction {
                    tables_in: (upper.len() + lower.len()) as u32,
                    pages_out,
                },
            );
        }
        let lower_level = &mut self.levels[level + 1];
        lower_level.extend(outputs);
        lower_level.sort_by(|a, b| a.smallest.cmp(&b.smallest));
        for sst in upper.into_iter().chain(lower) {
            t = self.backend.delete(sst.file, t)?;
        }
        t = self.backend.maintenance(t)?;
        self.stats.compactions += 1;
        Ok(t)
    }

    /// Simulates a crash: the memtable and any unsynced WAL tail are
    /// lost; the database state is rebuilt from the durable WAL prefix
    /// and the existing SSTs. Returns the number of recovered mutations.
    pub fn crash_and_recover(&mut self, now: Nanos) -> Result<u64> {
        self.mem = Memtable::new();
        let durable = self.backend.durable_len(self.wal)?;
        let (raw, _t) = self.backend.read(self.wal, 0, durable, now)?;
        let mut recovered = 0;
        let mut at = 0usize;
        while at < raw.len() {
            let before = at;
            match decode_entry(&raw, &mut at) {
                Ok((key, seq, mutation)) => {
                    self.mem.insert(key, seq, mutation);
                    self.seq = self.seq.max(seq);
                    recovered += 1;
                }
                Err(_) => {
                    // Torn tail record: everything before `before` was
                    // intact; drop the tail.
                    let _ = before;
                    break;
                }
            }
        }
        Ok(recovered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{ConvBackend, ZnsBackend};
    use bh_conv::{ConvConfig, ConvSsd};
    use bh_flash::{FlashConfig, Geometry};
    use bh_zns::{ZnsConfig, ZnsDevice};

    fn small_cfg() -> DbConfig {
        DbConfig {
            memtable_bytes: 8 << 10,
            l0_files: 2,
            level_base_bytes: 32 << 10,
            level_multiplier: 4,
            sst_bytes: 16 << 10,
            block_bytes: 4096,
            sync_every: 16,
        }
    }

    fn conv_db() -> Db<ConvBackend> {
        let geo = Geometry {
            channels: 2,
            dies_per_channel: 2,
            planes_per_die: 2,
            blocks_per_plane: 40,
            pages_per_block: 32,
            page_bytes: 4096,
        };
        let ssd = ConvSsd::new(ConvConfig::new(FlashConfig::tlc(geo), 0.15)).unwrap();
        Db::new(ConvBackend::new(ssd), small_cfg()).unwrap()
    }

    fn zns_db() -> Db<ZnsBackend> {
        let geo = Geometry {
            channels: 2,
            dies_per_channel: 2,
            planes_per_die: 2,
            blocks_per_plane: 40,
            pages_per_block: 32,
            page_bytes: 4096,
        };
        let mut cfg = ZnsConfig::new(FlashConfig::tlc(geo), 8);
        cfg.max_active_zones = 14;
        cfg.max_open_zones = 14;
        Db::new(ZnsBackend::new(ZnsDevice::new(cfg).unwrap()), small_cfg()).unwrap()
    }

    fn key(i: u64) -> Vec<u8> {
        format!("user{i:010}").into_bytes()
    }

    fn value(i: u64) -> Vec<u8> {
        format!("payload-{i:06}-{}", "x".repeat(50)).into_bytes()
    }

    #[test]
    fn put_get_roundtrip() {
        let mut db = conv_db();
        let t = db.put(key(1), value(1), Nanos::ZERO).unwrap();
        let (v, _) = db.get(&key(1), t).unwrap();
        assert_eq!(v, Some(value(1)));
        let (miss, _) = db.get(&key(2), t).unwrap();
        assert_eq!(miss, None);
    }

    #[test]
    fn overwrites_return_newest() {
        let mut db = conv_db();
        let mut t = Nanos::ZERO;
        // Enough churn to force flushes and compactions.
        for round in 0..6u64 {
            for i in 0..300u64 {
                t = db.put(key(i), value(i * 1000 + round), t).unwrap();
            }
        }
        assert!(db.stats().flushes > 0);
        for i in (0..300u64).step_by(17) {
            let (v, done) = db.get(&key(i), t).unwrap();
            assert_eq!(v, Some(value(i * 1000 + 5)), "key {i}");
            t = done;
        }
    }

    #[test]
    fn deletes_shadow_older_values() {
        let mut db = conv_db();
        let mut t = Nanos::ZERO;
        for i in 0..300u64 {
            t = db.put(key(i), value(i), t).unwrap();
        }
        t = db.flush(t).unwrap();
        for i in (0..300u64).step_by(2) {
            t = db.delete(key(i), t).unwrap();
        }
        t = db.flush(t).unwrap();
        t = db.maybe_compact(t).unwrap();
        let (gone, _) = db.get(&key(0), t).unwrap();
        assert_eq!(gone, None);
        let (kept, _) = db.get(&key(1), t).unwrap();
        assert_eq!(kept, Some(value(1)));
    }

    #[test]
    fn compaction_keeps_levels_bounded() {
        let mut db = conv_db();
        let mut t = Nanos::ZERO;
        for i in 0..3000u64 {
            t = db.put(key(i % 600), value(i), t).unwrap();
        }
        t = db.flush(t).unwrap();
        let _ = db.maybe_compact(t).unwrap();
        let counts = db.level_file_counts();
        assert!(
            counts[0] <= small_cfg().l0_files,
            "L0 over target: {counts:?}"
        );
        assert!(db.stats().compactions > 0);
        // Deeper levels are sorted and non-overlapping.
        for level in db.levels.iter().skip(1) {
            for w in level.windows(2) {
                assert!(w[0].largest < w[1].smallest);
            }
        }
    }

    #[test]
    fn flushes_and_compactions_are_traced() {
        use bh_trace::{Event, KvEvent, Tracer};
        let mut db = conv_db();
        db.set_tracer(Tracer::ring(1 << 20));
        let mut t = Nanos::ZERO;
        for i in 0..3000u64 {
            t = db.put(key(i % 600), value(i), t).unwrap();
        }
        let events = db.tracer().events();
        let flushes = events
            .iter()
            .filter(|e| matches!(e.event, Event::Kv(KvEvent::Flush { .. })))
            .count() as u64;
        let compactions = events
            .iter()
            .filter(|e| matches!(e.event, Event::Kv(KvEvent::Compaction { .. })))
            .count() as u64;
        assert_eq!(flushes, db.stats().flushes);
        assert_eq!(compactions, db.stats().compactions);
        assert!(flushes > 0 && compactions > 0);
        // The cascade reaches the device: flash ops land in the same ring.
        assert!(events.iter().any(|e| matches!(e.event, Event::Flash(_))));
    }

    #[test]
    fn same_workload_runs_on_both_backends() {
        let mut conv = conv_db();
        let mut zns = zns_db();
        let mut tc = Nanos::ZERO;
        let mut tz = Nanos::ZERO;
        for i in 0..1500u64 {
            let (k, v) = (key(i % 400), value(i));
            tc = conv.put(k.clone(), v.clone(), tc).unwrap();
            tz = zns.put(k, v, tz).unwrap();
        }
        for i in (0..400u64).step_by(13) {
            let (vc, dc) = conv.get(&key(i), tc).unwrap();
            let (vz, dz) = zns.get(&key(i), tz).unwrap();
            assert_eq!(vc, vz, "backends disagree on key {i}");
            tc = dc;
            tz = dz;
        }
    }

    #[test]
    fn crash_recovery_replays_synced_writes() {
        let mut db = conv_db();
        let mut t = Nanos::ZERO;
        // sync_every=16: write 40 entries so 32 are synced, 8 are not.
        for i in 0..40u64 {
            t = db.put(key(i), value(i), t).unwrap();
        }
        assert!(db.stats().flushes == 0, "keep everything in the memtable");
        let recovered = db.crash_and_recover(t).unwrap();
        assert!(
            (32..40).contains(&recovered),
            "expected the synced prefix, got {recovered}"
        );
        // Synced keys are back.
        let (v, _) = db.get(&key(0), t).unwrap();
        assert_eq!(v, Some(value(0)));
        // Unsynced tail is lost.
        let (v, _) = db.get(&key(39), t).unwrap();
        assert_eq!(v, None);
    }

    #[test]
    fn app_write_amplification_exceeds_one_under_churn() {
        let mut db = conv_db();
        let mut t = Nanos::ZERO;
        for i in 0..4000u64 {
            t = db.put(key(i % 500), value(i), t).unwrap();
        }
        let wa = db.stats().app_write_amplification();
        assert!(wa > 1.0, "LSM app WA should exceed 1, got {wa}");
    }

    #[test]
    fn zns_backend_device_wa_stays_low() {
        let mut db = zns_db();
        let mut t = Nanos::ZERO;
        for i in 0..4000u64 {
            t = db.put(key(i % 500), value(i), t).unwrap();
        }
        let wa = db.backend().device_write_amplification();
        assert!(wa < 1.5, "ZNS device WA should stay near 1, got {wa}");
    }
}
