//! Bloom filters for SST point lookups.
//!
//! Each SST carries a bloom filter over its keys so a `get` can skip
//! files that cannot contain the key — the standard LSM read
//! optimization; without it every lookup would pay one device read per
//! level.

/// A fixed-size bloom filter using double hashing (Kirsch–Mitzenmacher).
///
/// # Examples
///
/// ```
/// use bh_kv::BloomFilter;
/// let mut b = BloomFilter::with_capacity(100, 10);
/// b.insert(b"hello");
/// assert!(b.contains(b"hello"));
/// ```
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    hashes: u32,
}

/// 64-bit FNV-1a, the primary hash.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A second, independent mix for double hashing.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ceb9fe1a85ec53);
    h ^ (h >> 33)
}

impl BloomFilter {
    /// Creates a filter sized for `items` expected keys at `bits_per_key`
    /// bits each (10 bits/key ≈ 1% false positives).
    pub fn with_capacity(items: usize, bits_per_key: usize) -> Self {
        let num_bits = ((items.max(1) * bits_per_key) as u64).max(64);
        // Optimal k = ln2 * bits/key, clamped to a sane range.
        let hashes = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 12);
        BloomFilter {
            bits: vec![0; num_bits.div_ceil(64) as usize],
            num_bits,
            hashes,
        }
    }

    /// Rebuilds a filter from its serialized parts (see
    /// [`BloomFilter::to_words`]).
    pub fn from_words(bits: Vec<u64>, num_bits: u64, hashes: u32) -> Self {
        BloomFilter {
            bits,
            num_bits,
            hashes,
        }
    }

    /// Serialized form: the bit words plus parameters.
    pub fn to_words(&self) -> (&[u64], u64, u32) {
        (&self.bits, self.num_bits, self.hashes)
    }

    fn positions(&self, key: &[u8]) -> impl Iterator<Item = u64> + '_ {
        let h1 = fnv1a(key);
        let h2 = mix(h1) | 1; // Odd so all positions vary.
        let n = self.num_bits;
        (0..self.hashes as u64).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) % n)
    }

    /// Adds a key.
    pub fn insert(&mut self, key: &[u8]) {
        let positions: Vec<u64> = self.positions(key).collect();
        for p in positions {
            self.bits[(p / 64) as usize] |= 1 << (p % 64);
        }
    }

    /// Tests membership; false positives possible, false negatives never.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.positions(key)
            .all(|p| self.bits[(p / 64) as usize] & (1 << (p % 64)) != 0)
    }

    /// Approximate memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut b = BloomFilter::with_capacity(1000, 10);
        for i in 0..1000u32 {
            b.insert(&i.to_le_bytes());
        }
        for i in 0..1000u32 {
            assert!(b.contains(&i.to_le_bytes()), "lost key {i}");
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut b = BloomFilter::with_capacity(1000, 10);
        for i in 0..1000u32 {
            b.insert(&i.to_le_bytes());
        }
        let fp = (1000..11_000u32)
            .filter(|i| b.contains(&i.to_le_bytes()))
            .count();
        let rate = fp as f64 / 10_000.0;
        assert!(rate < 0.03, "false positive rate {rate}");
    }

    #[test]
    fn empty_filter_contains_nothing_surely() {
        let b = BloomFilter::with_capacity(10, 10);
        let hits = (0..1000u32)
            .filter(|i| b.contains(&i.to_le_bytes()))
            .count();
        assert_eq!(hits, 0);
    }

    #[test]
    fn serialization_roundtrip() {
        let mut b = BloomFilter::with_capacity(100, 10);
        b.insert(b"key");
        let (words, bits, hashes) = b.to_words();
        let b2 = BloomFilter::from_words(words.to_vec(), bits, hashes);
        assert!(b2.contains(b"key"));
        assert!(!b2.contains(b"other"));
    }

    #[test]
    fn tiny_capacity_still_works() {
        let mut b = BloomFilter::with_capacity(0, 10);
        b.insert(b"x");
        assert!(b.contains(b"x"));
    }
}
