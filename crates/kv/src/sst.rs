//! Sorted-string-table files: the LSM tree's immutable on-device runs.
//!
//! Layout within a backend file:
//!
//! ```text
//! [data block 0][data block 1]...[index block][bloom block][footer]
//! ```
//!
//! Data blocks hold length-prefixed entries in key order; the index block
//! records each block's first key and byte range; the bloom block holds a
//! filter over all keys; the fixed-size footer points at both. Readers
//! load index + bloom at open (charged device reads) and afterwards serve
//! a point lookup with at most one data-block read.

use crate::backend::{FileHint, FileId, StorageBackend};
use crate::bloom::BloomFilter;
use crate::error::KvError;
use crate::memtable::Mutation;
use crate::Result;
use bh_metrics::Nanos;

/// One decoded entry: key, sequence number, mutation.
pub type ScanEntry = (Vec<u8>, u64, Mutation);

/// Tombstones are encoded with this value-length marker.
const TOMBSTONE: u32 = u32::MAX;
/// Footer: index_off, index_len, bloom_off, bloom_len (4 × u64).
const FOOTER_BYTES: u64 = 32;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(data: &[u8], at: &mut usize) -> Result<u32> {
    let end = *at + 4;
    let bytes = data.get(*at..end).ok_or(KvError::Corrupt("u32"))?;
    *at = end;
    Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
}

fn get_u64(data: &[u8], at: &mut usize) -> Result<u64> {
    let end = *at + 8;
    let bytes = data.get(*at..end).ok_or(KvError::Corrupt("u64"))?;
    *at = end;
    Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
}

fn get_bytes<'d>(data: &'d [u8], at: &mut usize, len: usize) -> Result<&'d [u8]> {
    let end = *at + len;
    let bytes = data.get(*at..end).ok_or(KvError::Corrupt("bytes"))?;
    *at = end;
    Ok(bytes)
}

/// Encodes one entry: `[klen][vlen|TOMBSTONE][seq][key][value]`.
pub(crate) fn encode_entry(out: &mut Vec<u8>, key: &[u8], seq: u64, mutation: &Mutation) {
    put_u32(out, key.len() as u32);
    match mutation {
        Some(v) => put_u32(out, v.len() as u32),
        None => put_u32(out, TOMBSTONE),
    }
    put_u64(out, seq);
    out.extend_from_slice(key);
    if let Some(v) = mutation {
        out.extend_from_slice(v);
    }
}

/// Decodes one entry at `*at`, advancing it. Returns
/// `(key, seq, mutation)`.
pub(crate) fn decode_entry(data: &[u8], at: &mut usize) -> Result<(Vec<u8>, u64, Mutation)> {
    let klen = get_u32(data, at)? as usize;
    let vlen = get_u32(data, at)?;
    let seq = get_u64(data, at)?;
    let key = get_bytes(data, at, klen)?.to_vec();
    let mutation = if vlen == TOMBSTONE {
        None
    } else {
        Some(get_bytes(data, at, vlen as usize)?.to_vec())
    };
    Ok((key, seq, mutation))
}

/// One data block's index entry.
#[derive(Debug, Clone)]
struct IndexEntry {
    first_key: Vec<u8>,
    offset: u64,
    len: u64,
}

/// An open SST: file handle plus in-memory index and bloom filter.
#[derive(Debug)]
pub struct Sst {
    /// Backing file.
    pub file: FileId,
    /// LSM level the file belongs to.
    pub level: u32,
    /// Smallest key in the table.
    pub smallest: Vec<u8>,
    /// Largest key in the table.
    pub largest: Vec<u8>,
    /// Number of entries.
    pub entries: u64,
    /// Total bytes of data blocks (for level sizing).
    pub data_bytes: u64,
    index: Vec<IndexEntry>,
    bloom: BloomFilter,
}

impl Sst {
    /// True if `key` could be in this table's key range.
    pub fn covers(&self, key: &[u8]) -> bool {
        key >= self.smallest.as_slice() && key <= self.largest.as_slice()
    }

    /// True if the key ranges of `self` and `other` overlap.
    pub fn overlaps(&self, smallest: &[u8], largest: &[u8]) -> bool {
        !(largest < self.smallest.as_slice() || smallest > self.largest.as_slice())
    }

    /// Point lookup. Returns the newest `(seq, mutation)` for `key` in
    /// this table, plus the completion instant of any device reads.
    pub fn get(
        &self,
        backend: &mut dyn StorageBackend,
        key: &[u8],
        now: Nanos,
    ) -> Result<(Option<(u64, Mutation)>, Nanos)> {
        if !self.covers(key) || !self.bloom.contains(key) {
            return Ok((None, now));
        }
        // Last block whose first key <= key.
        let idx = match self
            .index
            .partition_point(|e| e.first_key.as_slice() <= key)
        {
            0 => return Ok((None, now)),
            n => n - 1,
        };
        let entry = &self.index[idx];
        let (block, done) = backend.read(self.file, entry.offset, entry.len, now)?;
        let mut at = 0usize;
        while at < block.len() {
            let (k, seq, mutation) = decode_entry(&block, &mut at)?;
            if k.as_slice() == key {
                return Ok((Some((seq, mutation)), done));
            }
            if k.as_slice() > key {
                break;
            }
        }
        Ok((None, done))
    }

    /// Reads every entry in key order (used by compaction). Returns the
    /// entries and the completion instant.
    pub fn scan(
        &self,
        backend: &mut dyn StorageBackend,
        now: Nanos,
    ) -> Result<(Vec<ScanEntry>, Nanos)> {
        let mut out = Vec::with_capacity(self.entries as usize);
        let mut t = now;
        for entry in &self.index {
            let (block, done) = backend.read(self.file, entry.offset, entry.len, t)?;
            t = done;
            let mut at = 0usize;
            while at < block.len() {
                out.push(decode_entry(&block, &mut at)?);
            }
        }
        Ok((out, t))
    }

    /// Opens an SST by reading its footer, index, and bloom filter from
    /// the backend.
    pub fn open(
        backend: &mut dyn StorageBackend,
        file: FileId,
        level: u32,
        now: Nanos,
    ) -> Result<(Sst, Nanos)> {
        let len = backend.len(file)?;
        if len < FOOTER_BYTES {
            return Err(KvError::Corrupt("sst footer"));
        }
        let (footer, t1) = backend.read(file, len - FOOTER_BYTES, FOOTER_BYTES, now)?;
        let mut at = 0usize;
        let index_off = get_u64(&footer, &mut at)?;
        let index_len = get_u64(&footer, &mut at)?;
        let bloom_off = get_u64(&footer, &mut at)?;
        let bloom_len = get_u64(&footer, &mut at)?;
        let (index_raw, t2) = backend.read(file, index_off, index_len, t1)?;
        let (bloom_raw, t3) = backend.read(file, bloom_off, bloom_len, t2)?;

        // Index: [n][klen key off len]*
        let mut at = 0usize;
        let n = get_u32(&index_raw, &mut at)? as usize;
        let mut index = Vec::with_capacity(n);
        for _ in 0..n {
            let klen = get_u32(&index_raw, &mut at)? as usize;
            let first_key = get_bytes(&index_raw, &mut at, klen)?.to_vec();
            let offset = get_u64(&index_raw, &mut at)?;
            let len = get_u64(&index_raw, &mut at)?;
            index.push(IndexEntry {
                first_key,
                offset,
                len,
            });
        }
        // Bloom: [num_bits][hashes][nwords][words]*
        let mut at = 0usize;
        let num_bits = get_u64(&bloom_raw, &mut at)?;
        let hashes = get_u32(&bloom_raw, &mut at)?;
        let nwords = get_u32(&bloom_raw, &mut at)? as usize;
        let mut words = Vec::with_capacity(nwords);
        for _ in 0..nwords {
            words.push(get_u64(&bloom_raw, &mut at)?);
        }
        // Trailer of the bloom block: entry count, smallest, largest.
        let entries = get_u64(&bloom_raw, &mut at)?;
        let klen = get_u32(&bloom_raw, &mut at)? as usize;
        let smallest = get_bytes(&bloom_raw, &mut at, klen)?.to_vec();
        let klen = get_u32(&bloom_raw, &mut at)? as usize;
        let largest = get_bytes(&bloom_raw, &mut at, klen)?.to_vec();

        Ok((
            Sst {
                file,
                level,
                smallest,
                largest,
                entries,
                data_bytes: index_off,
                index,
                bloom: BloomFilter::from_words(words, num_bits, hashes),
            },
            t3,
        ))
    }
}

/// Streams sorted entries into a new SST file.
pub struct SstBuilder {
    file: FileId,
    level: u32,
    block_bytes: usize,
    block: Vec<u8>,
    block_first_key: Option<Vec<u8>>,
    index: Vec<IndexEntry>,
    bloom_keys: Vec<Vec<u8>>,
    written: u64,
    entries: u64,
    smallest: Option<Vec<u8>>,
    largest: Option<Vec<u8>>,
}

impl SstBuilder {
    /// Starts a new table at `level`, cutting data blocks at
    /// `block_bytes`.
    pub fn new(backend: &mut dyn StorageBackend, level: u32, block_bytes: usize) -> Self {
        let file = backend.create(FileHint::Sst { level });
        SstBuilder {
            file,
            level,
            block_bytes,
            block: Vec::new(),
            block_first_key: None,
            index: Vec::new(),
            bloom_keys: Vec::new(),
            written: 0,
            entries: 0,
            smallest: None,
            largest: None,
        }
    }

    /// Current data bytes emitted (for file-size cutting by the caller).
    pub fn data_bytes(&self) -> u64 {
        self.written + self.block.len() as u64
    }

    /// Number of entries added so far.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Adds an entry; keys must arrive in strictly increasing order.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when keys are out of order — the caller
    /// (memtable iteration or merge) is sorted by construction.
    pub fn add(
        &mut self,
        backend: &mut dyn StorageBackend,
        key: &[u8],
        seq: u64,
        mutation: &Mutation,
        now: Nanos,
    ) -> Result<Nanos> {
        debug_assert!(
            self.largest.as_deref().map(|l| key > l).unwrap_or(true),
            "keys must be added in order"
        );
        if self.block_first_key.is_none() {
            self.block_first_key = Some(key.to_vec());
        }
        encode_entry(&mut self.block, key, seq, mutation);
        self.bloom_keys.push(key.to_vec());
        self.entries += 1;
        if self.smallest.is_none() {
            self.smallest = Some(key.to_vec());
        }
        self.largest = Some(key.to_vec());
        if self.block.len() >= self.block_bytes {
            return self.flush_block(backend, now);
        }
        Ok(now)
    }

    fn flush_block(&mut self, backend: &mut dyn StorageBackend, now: Nanos) -> Result<Nanos> {
        if self.block.is_empty() {
            return Ok(now);
        }
        let first_key = self.block_first_key.take().expect("non-empty block");
        let len = self.block.len() as u64;
        let done = backend.append(self.file, &self.block, now)?;
        self.index.push(IndexEntry {
            first_key,
            offset: self.written,
            len,
        });
        self.written += len;
        self.block.clear();
        Ok(done)
    }

    /// Finishes the table: writes index, bloom, and footer, syncs the
    /// file, and returns the open [`Sst`].
    ///
    /// # Errors
    ///
    /// Returns [`KvError::Corrupt`] if no entries were added — empty
    /// tables are a logic error upstream.
    pub fn finish(mut self, backend: &mut dyn StorageBackend, now: Nanos) -> Result<(Sst, Nanos)> {
        if self.entries == 0 {
            return Err(KvError::Corrupt("empty sst"));
        }
        let mut t = self.flush_block(backend, now)?;

        let index_off = self.written;
        let mut index_raw = Vec::new();
        put_u32(&mut index_raw, self.index.len() as u32);
        for e in &self.index {
            put_u32(&mut index_raw, e.first_key.len() as u32);
            index_raw.extend_from_slice(&e.first_key);
            put_u64(&mut index_raw, e.offset);
            put_u64(&mut index_raw, e.len);
        }
        t = backend.append(self.file, &index_raw, t)?;

        let mut bloom = BloomFilter::with_capacity(self.bloom_keys.len(), 10);
        for k in &self.bloom_keys {
            bloom.insert(k);
        }
        let (words, num_bits, hashes) = bloom.to_words();
        let bloom_off = index_off + index_raw.len() as u64;
        let mut bloom_raw = Vec::new();
        put_u64(&mut bloom_raw, num_bits);
        put_u32(&mut bloom_raw, hashes);
        put_u32(&mut bloom_raw, words.len() as u32);
        for w in words {
            put_u64(&mut bloom_raw, *w);
        }
        put_u64(&mut bloom_raw, self.entries);
        let smallest = self.smallest.clone().expect("entries > 0");
        let largest = self.largest.clone().expect("entries > 0");
        put_u32(&mut bloom_raw, smallest.len() as u32);
        bloom_raw.extend_from_slice(&smallest);
        put_u32(&mut bloom_raw, largest.len() as u32);
        bloom_raw.extend_from_slice(&largest);
        t = backend.append(self.file, &bloom_raw, t)?;

        let mut footer = Vec::new();
        put_u64(&mut footer, index_off);
        put_u64(&mut footer, index_raw.len() as u64);
        put_u64(&mut footer, bloom_off);
        put_u64(&mut footer, bloom_raw.len() as u64);
        t = backend.append(self.file, &footer, t)?;
        t = backend.sync(self.file, t)?;

        Ok((
            Sst {
                file: self.file,
                level: self.level,
                smallest,
                largest,
                entries: self.entries,
                data_bytes: index_off,
                index: self.index,
                bloom,
            },
            t,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ConvBackend;
    use bh_conv::{ConvConfig, ConvSsd};
    use bh_flash::{FlashConfig, Geometry};

    fn backend() -> ConvBackend {
        let geo = Geometry {
            channels: 2,
            dies_per_channel: 1,
            planes_per_die: 2,
            blocks_per_plane: 32,
            pages_per_block: 16,
            page_bytes: 4096,
        };
        ConvBackend::new(ConvSsd::new(ConvConfig::new(FlashConfig::tlc(geo), 0.15)).unwrap())
    }

    fn key(i: u32) -> Vec<u8> {
        format!("key{i:08}").into_bytes()
    }

    fn build(backend: &mut ConvBackend, n: u32) -> Sst {
        let mut b = SstBuilder::new(backend, 1, 4096);
        let mut t = Nanos::ZERO;
        for i in 0..n {
            let mutation = if i % 10 == 9 {
                None
            } else {
                Some(format!("value-{i}").into_bytes())
            };
            t = b.add(backend, &key(i), i as u64, &mutation, t).unwrap();
        }
        b.finish(backend, t).unwrap().0
    }

    #[test]
    fn entry_encoding_roundtrip() {
        let mut buf = Vec::new();
        encode_entry(&mut buf, b"k1", 7, &Some(b"v1".to_vec()));
        encode_entry(&mut buf, b"k2", 8, &None);
        let mut at = 0;
        assert_eq!(
            decode_entry(&buf, &mut at).unwrap(),
            (b"k1".to_vec(), 7, Some(b"v1".to_vec()))
        );
        assert_eq!(
            decode_entry(&buf, &mut at).unwrap(),
            (b"k2".to_vec(), 8, None)
        );
        assert_eq!(at, buf.len());
    }

    #[test]
    fn decode_of_truncated_entry_fails() {
        let mut buf = Vec::new();
        encode_entry(&mut buf, b"key", 1, &Some(b"value".to_vec()));
        buf.truncate(buf.len() - 2);
        let mut at = 0;
        assert!(decode_entry(&buf, &mut at).is_err());
    }

    #[test]
    fn build_and_get() {
        let mut be = backend();
        let sst = build(&mut be, 500);
        assert_eq!(sst.entries, 500);
        // Values present.
        let (hit, _) = sst.get(&mut be, &key(42), Nanos::ZERO).unwrap();
        assert_eq!(hit, Some((42, Some(b"value-42".to_vec()))));
        // Tombstones preserved.
        let (hit, _) = sst.get(&mut be, &key(9), Nanos::ZERO).unwrap();
        assert_eq!(hit, Some((9, None)));
        // Misses (in and out of range).
        let (miss, _) = sst.get(&mut be, b"key99999999", Nanos::ZERO).unwrap();
        assert_eq!(miss, None);
        let (miss, _) = sst.get(&mut be, b"aaa", Nanos::ZERO).unwrap();
        assert_eq!(miss, None);
    }

    #[test]
    fn open_roundtrips_metadata() {
        let mut be = backend();
        let sst = build(&mut be, 300);
        let file = sst.file;
        let (reopened, _) = Sst::open(&mut be, file, 1, Nanos::ZERO).unwrap();
        assert_eq!(reopened.entries, 300);
        assert_eq!(reopened.smallest, key(0));
        assert_eq!(reopened.largest, key(299));
        let (hit, _) = reopened.get(&mut be, &key(123), Nanos::ZERO).unwrap();
        assert_eq!(hit, Some((123, Some(b"value-123".to_vec()))));
    }

    #[test]
    fn scan_returns_all_in_order() {
        let mut be = backend();
        let sst = build(&mut be, 200);
        let (entries, _) = sst.scan(&mut be, Nanos::ZERO).unwrap();
        assert_eq!(entries.len(), 200);
        for w in entries.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn overlap_and_cover_checks() {
        let mut be = backend();
        let sst = build(&mut be, 100);
        assert!(sst.covers(&key(50)));
        assert!(!sst.covers(&key(100)));
        assert!(sst.overlaps(&key(90), &key(200)));
        assert!(!sst.overlaps(&key(100), &key(200)));
        assert!(sst.overlaps(b"a".as_slice(), b"z".as_slice()));
    }

    #[test]
    fn empty_table_is_rejected() {
        let mut be = backend();
        let b = SstBuilder::new(&mut be, 0, 4096);
        assert!(matches!(
            b.finish(&mut be, Nanos::ZERO),
            Err(KvError::Corrupt("empty sst"))
        ));
    }
}
