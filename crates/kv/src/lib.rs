//! An LSM-tree key-value store with pluggable SSD backends.
//!
//! The paper's most concrete §2.4 performance evidence is about RocksDB:
//! write amplification dropping from 5× to 1.2× on ZNS [3], and 2–4×
//! lower read tail latency with 2× the write throughput [10]. Reproducing
//! those claims requires an actual LSM engine whose I/O can meet either
//! device interface, so this crate implements one from scratch:
//!
//! - a write-ahead log and sorted memtable ([`memtable`]; the WAL lives in
//!   [`db`]),
//! - immutable sorted-run files with block indexes and bloom filters
//!   ([`sst`], [`bloom`]),
//! - leveled compaction with size-tiered level targets ([`db`]),
//! - and two [`backend`]s over the shared flash substrate:
//!   - **conventional**: files live at logical block addresses of a
//!     `bh-conv` SSD; deletes TRIM, and the device FTL mixes the levels'
//!     lifetimes on flash — device-level WA follows;
//!   - **ZNS**: files append into zones chosen by a lifetime class
//!     derived from the LSM level (ZenFS's design), so compaction deletes
//!     kill whole zones and device WA stays near 1.
//!
//! Both backends present the same byte-oriented file API; the store never
//! knows which device it runs on — differences in the measured numbers
//! come from the interface, as the paper argues.

pub mod backend;
pub mod bloom;
pub mod db;
pub mod error;
pub mod memtable;
pub mod sst;

pub use backend::{ConvBackend, FileHint, FileId, StorageBackend, ZnsBackend};
pub use bloom::BloomFilter;
pub use db::{Db, DbConfig, DbStats};
pub use error::KvError;
pub use memtable::Memtable;
pub use sst::{Sst, SstBuilder};

/// Convenience result alias for KV operations.
pub type Result<T> = std::result::Result<T, KvError>;
