//! The in-memory sorted write buffer.

use std::collections::BTreeMap;
use std::ops::Bound;

/// One logical mutation: a value or a tombstone.
pub type Mutation = Option<Vec<u8>>;

/// A sorted in-memory buffer of the newest mutations.
///
/// Keys map to `(sequence, mutation)`; a `None` mutation is a tombstone
/// shadowing older versions in the SST levels below.
#[derive(Debug, Default)]
pub struct Memtable {
    entries: BTreeMap<Vec<u8>, (u64, Mutation)>,
    /// Approximate resident bytes (keys + values + fixed overhead).
    bytes: usize,
}

impl Memtable {
    /// Creates an empty memtable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a mutation with its sequence number, replacing any older
    /// entry for the key.
    pub fn insert(&mut self, key: Vec<u8>, seq: u64, mutation: Mutation) {
        let add = key.len() + mutation.as_ref().map(Vec::len).unwrap_or(0) + 24;
        if let Some((_, old)) = self.entries.insert(key, (seq, mutation)) {
            let _ = old; // Replaced entry: adjust size below via recount shortcut.
        }
        // Approximate: additions only. Replacements overcount slightly,
        // which only makes flushes marginally more eager.
        self.bytes += add;
    }

    /// Looks up the newest mutation for `key`, if buffered.
    pub fn get(&self, key: &[u8]) -> Option<&(u64, Mutation)> {
        self.entries.get(key)
    }

    /// Number of buffered keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate resident bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.bytes
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<u8>, &(u64, Mutation))> {
        self.entries.iter()
    }

    /// Iterates entries with keys in `[from, to)`.
    pub fn range(
        &self,
        from: &[u8],
        to: &[u8],
    ) -> impl Iterator<Item = (&Vec<u8>, &(u64, Mutation))> {
        self.entries
            .range::<[u8], _>((Bound::Included(from), Bound::Excluded(to)))
    }

    /// Drains the table for a flush, leaving it empty.
    pub fn take(&mut self) -> BTreeMap<Vec<u8>, (u64, Mutation)> {
        self.bytes = 0;
        std::mem::take(&mut self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_latest_wins() {
        let mut m = Memtable::new();
        m.insert(b"a".to_vec(), 1, Some(b"1".to_vec()));
        m.insert(b"a".to_vec(), 2, Some(b"2".to_vec()));
        assert_eq!(m.get(b"a"), Some(&(2, Some(b"2".to_vec()))));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn tombstones_are_entries() {
        let mut m = Memtable::new();
        m.insert(b"a".to_vec(), 1, Some(b"1".to_vec()));
        m.insert(b"a".to_vec(), 2, None);
        assert_eq!(m.get(b"a"), Some(&(2, None)));
    }

    #[test]
    fn iteration_is_sorted() {
        let mut m = Memtable::new();
        for k in [b"c".to_vec(), b"a".to_vec(), b"b".to_vec()] {
            m.insert(k, 0, None);
        }
        let keys: Vec<_> = m.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn range_is_half_open() {
        let mut m = Memtable::new();
        for k in [b"a", b"b", b"c", b"d"] {
            m.insert(k.to_vec(), 0, None);
        }
        let keys: Vec<_> = m.range(b"b", b"d").map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![b"b".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn take_empties_and_resets_size() {
        let mut m = Memtable::new();
        m.insert(b"a".to_vec(), 1, Some(vec![0; 100]));
        assert!(m.approximate_bytes() >= 100);
        let drained = m.take();
        assert_eq!(drained.len(), 1);
        assert!(m.is_empty());
        assert_eq!(m.approximate_bytes(), 0);
    }
}
