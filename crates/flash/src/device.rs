//! The flash device: geometry + blocks + timing, behind a read/program/
//! erase/copy interface.
//!
//! [`FlashDevice`] is the single substrate both SSD models share. It owns
//! all block state, enforces the physical constraints (§2.1), attributes
//! operations to an [`OpOrigin`] for write-amplification accounting
//! (§2.2), and computes completion instants through the
//! [`crate::ResourceModel`] so plane/channel contention emerges naturally.

use crate::block::{Block, BlockStatus};
use crate::cell::{CellKind, TimingSpec};
use crate::error::FlashError;
use crate::geometry::{BlockId, Geometry, PlaneId, Ppa};
use crate::sched::ResourceModel;
use crate::stats::FlashStats;
use crate::Result;
use bh_faults::{FaultConfig, FaultCounters, FaultPlan};
use bh_metrics::Nanos;
use bh_obs::{Ctr, Obs};
use bh_trace::{FaultEvent, FlashEvent, FlashOpKind, Tracer};

/// Opaque per-page payload identifier.
///
/// Stamps stand in for page contents: a writer records a stamp, a reader
/// gets the same stamp back, and integrity tests verify the round trip.
pub type Stamp = u64;

/// Packs `(seq << 32) | lba` into a stamp — the out-of-band metadata real
/// devices store beside each page. Recovery scans decode it to rebuild
/// logical mappings (`lba`) and order duplicate versions (`seq`) after
/// power loss.
pub fn encode_oob(seq: u64, lba: u64) -> Stamp {
    debug_assert!(lba < (1 << 32), "lba {lba} exceeds OOB field");
    (seq << 32) | lba
}

/// Inverse of [`encode_oob`]: returns `(seq, lba)`.
pub fn decode_oob(stamp: Stamp) -> (u64, u64) {
    (stamp >> 32, stamp & 0xFFFF_FFFF)
}

/// Who initiated an operation, for write-amplification attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpOrigin {
    /// The host (or the application running on it).
    Host,
    /// Device- or FTL-internal machinery: garbage collection, wear
    /// leveling, data relocation.
    Internal,
}

/// Construction parameters for a [`FlashDevice`].
#[derive(Debug, Clone, Copy)]
pub struct FlashConfig {
    /// Physical layout.
    pub geometry: Geometry,
    /// Cell technology, which fixes timing and endurance.
    pub cell: CellKind,
    /// Overrides the cell's rated endurance (program/erase cycles per
    /// block); useful for wear-out experiments that should not need
    /// thousands of cycles.
    pub endurance_override: Option<u32>,
}

impl FlashConfig {
    /// A TLC device with the given geometry and rated endurance.
    pub fn tlc(geometry: Geometry) -> Self {
        FlashConfig {
            geometry,
            cell: CellKind::Tlc,
            endurance_override: None,
        }
    }
}

/// Outcome of an erase operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EraseOutcome {
    /// Completion instant.
    pub done: Nanos,
    /// True when this erase exhausted the block's endurance and retired
    /// it; the erase itself still completed.
    pub retired: bool,
}

/// A simulated NAND flash device.
///
/// # Examples
///
/// ```
/// use bh_flash::{FlashConfig, FlashDevice, Geometry, BlockId, OpOrigin};
/// use bh_metrics::Nanos;
///
/// let mut dev = FlashDevice::new(FlashConfig::tlc(Geometry::small_test())).unwrap();
/// let (page, _done) = dev
///     .program_next(BlockId(0), 0xCAFE, Nanos::ZERO, OpOrigin::Host)
///     .unwrap();
/// let (stamp, _done) = dev
///     .read(bh_flash::Ppa::new(BlockId(0), page), Nanos::ZERO, OpOrigin::Host)
///     .unwrap();
/// assert_eq!(stamp, Some(0xCAFE));
/// ```
pub struct FlashDevice {
    geo: Geometry,
    timing: TimingSpec,
    endurance: u32,
    blocks: Vec<Block>,
    sched: ResourceModel,
    stats: FlashStats,
    tracer: Tracer,
    /// Live counter registry; bumps mirror `stats` exactly, so WA
    /// recomputed from counters matches `write_amplification()`.
    obs: Obs,
    /// Transient-fault decision stream; `None` (the default) is the
    /// exact pre-fault code path.
    faults: Option<FaultPlan>,
}

impl FlashDevice {
    /// Builds an erased device from `config`.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem if the geometry is degenerate
    /// (any zero dimension).
    pub fn new(config: FlashConfig) -> std::result::Result<Self, String> {
        config.geometry.validate()?;
        let geo = config.geometry;
        let blocks = geo
            .blocks()
            .map(|id| Block::new(id, geo.pages_per_block))
            .collect();
        Ok(FlashDevice {
            geo,
            timing: config.cell.timing(),
            endurance: config
                .endurance_override
                .unwrap_or_else(|| config.cell.endurance_cycles()),
            blocks,
            sched: ResourceModel::new(&geo),
            stats: FlashStats::default(),
            tracer: Tracer::disabled(),
            obs: Obs::disabled(),
            faults: None,
        })
    }

    /// Installs a transient-fault plan. Every subsequent program, erase,
    /// and read consults the plan's deterministic decision stream. A
    /// quiet plan (all rates zero) is behaviourally identical to no plan.
    pub fn install_faults(&mut self, cfg: FaultConfig) {
        self.faults = Some(FaultPlan::new(cfg));
    }

    /// What the installed fault plan has injected so far (`None` when no
    /// plan is installed).
    pub fn fault_counters(&self) -> Option<FaultCounters> {
        self.faults.as_ref().map(|p| p.counters())
    }

    fn trace_fault(&mut self, at: Nanos, ev: FaultEvent) {
        self.obs.inc(Ctr::FaultEvents);
        if self.tracer.enabled() {
            self.tracer.emit(at, ev);
        }
    }

    /// Consumes the next program-fault decision. Called only after the
    /// operation has passed validation, so a plan advances identically
    /// whether or not callers probe with invalid addresses.
    fn program_fault_fires(&mut self) -> bool {
        self.faults.as_mut().is_some_and(|p| p.next_program_fails())
    }

    fn erase_fault_fires(&mut self) -> bool {
        self.faults.as_mut().is_some_and(|p| p.next_erase_fails())
    }

    fn read_retries(&mut self) -> u32 {
        self.faults.as_mut().map_or(0, |p| p.next_read_retries())
    }

    /// The burned-program path: the pulse ran, consumed the page and
    /// plane time, but the data did not take. Always attributed as
    /// internal work — a failed program delivers no host data, so it
    /// inflates write amplification no matter who issued it.
    fn burn_program(&mut self, block: BlockId, now: Nanos, origin: OpOrigin) -> FlashError {
        let page = match self.blocks[block.0 as usize].burn_next() {
            Ok(p) => p,
            Err(e) => return e,
        };
        let plane = self.geo.plane_of(block);
        let done = self
            .sched
            .program(plane, &self.timing, self.geo.page_bytes, now);
        self.stats.internal_programs += 1;
        self.obs.inc(Ctr::FlashInternalPrograms);
        self.stats.busy += self.timing.program + self.timing.transfer(self.geo.page_bytes as u64);
        self.trace_op(
            FlashOpKind::Program,
            OpOrigin::Internal,
            plane,
            block,
            page,
            now,
            done,
        );
        let issuer = match origin {
            OpOrigin::Host => bh_trace::Origin::Host,
            OpOrigin::Internal => bh_trace::Origin::Internal,
        };
        self.trace_fault(
            done,
            FaultEvent::ProgramFail {
                block: block.0,
                page,
                origin: issuer,
            },
        );
        FlashError::ProgramFailed(Ppa::new(block, page))
    }

    /// Installs a tracer; flash operations emit [`FlashEvent`]s into it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Installs a live counter registry. Flash operations bump it in
    /// the same statements that bump [`FlashStats`], so counter-derived
    /// aggregates match the stats exactly. A disabled handle (the
    /// default) records nothing.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The registry handle in use (disabled by default). Cloning it
    /// yields a handle onto the same counters, which is how upper
    /// layers share one registry across the stack.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The tracer in use (disabled by default). Cloning it yields a handle
    /// onto the same event stream, which is how upper layers share one
    /// trace across the stack.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    #[allow(clippy::too_many_arguments)] // Private helper mirroring the event's fields.
    fn trace_op(
        &mut self,
        kind: FlashOpKind,
        origin: OpOrigin,
        plane: PlaneId,
        block: BlockId,
        page: u32,
        start: Nanos,
        done: Nanos,
    ) {
        if !self.tracer.enabled() {
            return;
        }
        self.tracer.emit(
            start,
            FlashEvent::Op {
                kind,
                origin: match origin {
                    OpOrigin::Host => bh_trace::Origin::Host,
                    OpOrigin::Internal => bh_trace::Origin::Internal,
                },
                channel: self.geo.channel_of(plane),
                die: self.geo.die_of(plane),
                plane: plane.0,
                block: block.0,
                page,
                start,
                done,
            },
        );
    }

    /// The device geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geo
    }

    /// The active timing specification.
    pub fn timing(&self) -> &TimingSpec {
        &self.timing
    }

    /// The per-block endurance rating in effect.
    pub fn endurance(&self) -> u32 {
        self.endurance
    }

    /// Cumulative operation counters.
    pub fn stats(&self) -> &FlashStats {
        &self.stats
    }

    /// Read-only access to a block's state.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::BlockOutOfRange`] for unknown identifiers.
    pub fn block(&self, id: BlockId) -> Result<&Block> {
        self.blocks
            .get(id.0 as usize)
            .ok_or(FlashError::BlockOutOfRange(id))
    }

    fn block_mut(&mut self, id: BlockId) -> Result<&mut Block> {
        self.blocks
            .get_mut(id.0 as usize)
            .ok_or(FlashError::BlockOutOfRange(id))
    }

    fn check_ppa(&self, ppa: Ppa) -> Result<()> {
        if self.geo.contains(ppa) {
            Ok(())
        } else {
            Err(FlashError::OutOfRange(ppa))
        }
    }

    /// Reads the page at `ppa`, issued at `now`.
    ///
    /// Returns the page's stamp (`None` if the page is programmed but
    /// invalid) and the completion instant.
    ///
    /// # Errors
    ///
    /// Propagates block-level errors; see [`Block::read`].
    pub fn read(
        &mut self,
        ppa: Ppa,
        now: Nanos,
        origin: OpOrigin,
    ) -> Result<(Option<Stamp>, Nanos)> {
        self.check_ppa(ppa)?;
        let stamp = self.blocks[ppa.block.0 as usize].read(ppa.page)?;
        // Consumed only after the media read succeeded, so probing bad
        // addresses never perturbs the decision stream.
        let retries = self.read_retries();
        let plane = self.geo.plane_of(ppa.block);
        let mut done = self
            .sched
            .read(plane, &self.timing, self.geo.page_bytes, now);
        match origin {
            OpOrigin::Host => {
                self.stats.host_reads += 1;
                self.obs.inc(Ctr::FlashHostReads);
            }
            OpOrigin::Internal => {
                self.stats.internal_reads += 1;
                self.obs.inc(Ctr::FlashInternalReads);
            }
        }
        self.stats.busy += self.timing.read + self.timing.transfer(self.geo.page_bytes as u64);
        if retries > 0 {
            self.obs.add(Ctr::FlashEccRetries, retries as u64);
        }
        for _ in 0..retries {
            // Each ECC retry re-senses the page: it queues behind the
            // previous attempt on the same plane, so tail latency
            // inflates through the resource model rather than a fudge
            // factor.
            done = self
                .sched
                .read(plane, &self.timing, self.geo.page_bytes, now);
            self.stats.internal_reads += 1;
            self.obs.inc(Ctr::FlashInternalReads);
            self.stats.busy += self.timing.read + self.timing.transfer(self.geo.page_bytes as u64);
        }
        self.trace_op(
            FlashOpKind::Read,
            origin,
            plane,
            ppa.block,
            ppa.page,
            now,
            done,
        );
        if retries > 0 {
            self.trace_fault(
                done,
                FaultEvent::ReadRetry {
                    block: ppa.block.0,
                    page: ppa.page,
                    retries,
                },
            );
        }
        Ok((stamp, done))
    }

    /// Programs the next sequential page of `block` with `stamp`, issued
    /// at `now`. Returns the page offset used and the completion instant.
    ///
    /// # Errors
    ///
    /// See [`Block::program_next`].
    pub fn program_next(
        &mut self,
        block: BlockId,
        stamp: Stamp,
        now: Nanos,
        origin: OpOrigin,
    ) -> Result<(u32, Nanos)> {
        {
            let b = self.block(block)?;
            if b.status() == BlockStatus::Bad {
                return Err(FlashError::BadBlock(block));
            }
            if b.is_full() {
                return Err(FlashError::BlockFull(block));
            }
        }
        if self.program_fault_fires() {
            return Err(self.burn_program(block, now, origin));
        }
        let page = self.block_mut(block)?.program_next(stamp)?;
        let plane = self.geo.plane_of(block);
        let done = self
            .sched
            .program(plane, &self.timing, self.geo.page_bytes, now);
        match origin {
            OpOrigin::Host => {
                self.stats.host_programs += 1;
                self.obs.inc(Ctr::FlashHostPrograms);
            }
            OpOrigin::Internal => {
                self.stats.internal_programs += 1;
                self.obs.inc(Ctr::FlashInternalPrograms);
            }
        }
        self.stats.busy += self.timing.program + self.timing.transfer(self.geo.page_bytes as u64);
        self.trace_op(FlashOpKind::Program, origin, plane, block, page, now, done);
        Ok((page, done))
    }

    /// Programs a specific page, which must be the block's next sequential
    /// page (the §2.1 rule), issued at `now`.
    ///
    /// # Errors
    ///
    /// See [`Block::program_at`].
    pub fn program_at(
        &mut self,
        ppa: Ppa,
        stamp: Stamp,
        now: Nanos,
        origin: OpOrigin,
    ) -> Result<Nanos> {
        self.check_ppa(ppa)?;
        {
            let b = self.block(ppa.block)?;
            if b.status() == BlockStatus::Bad {
                return Err(FlashError::BadBlock(ppa.block));
            }
            if b.is_full() {
                return Err(FlashError::BlockFull(ppa.block));
            }
            if ppa.page != b.cursor() {
                return Err(FlashError::NonSequentialProgram {
                    ppa,
                    expected: b.cursor(),
                });
            }
        }
        if self.program_fault_fires() {
            return Err(self.burn_program(ppa.block, now, origin));
        }
        self.block_mut(ppa.block)?.program_at(ppa.page, stamp)?;
        let plane = self.geo.plane_of(ppa.block);
        let done = self
            .sched
            .program(plane, &self.timing, self.geo.page_bytes, now);
        match origin {
            OpOrigin::Host => {
                self.stats.host_programs += 1;
                self.obs.inc(Ctr::FlashHostPrograms);
            }
            OpOrigin::Internal => {
                self.stats.internal_programs += 1;
                self.obs.inc(Ctr::FlashInternalPrograms);
            }
        }
        self.stats.busy += self.timing.program + self.timing.transfer(self.geo.page_bytes as u64);
        self.trace_op(
            FlashOpKind::Program,
            origin,
            plane,
            ppa.block,
            ppa.page,
            now,
            done,
        );
        Ok(done)
    }

    /// Marks the page at `ppa` invalid. Metadata-only: consumes no device
    /// time.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::OutOfRange`] for bad addresses.
    ///
    /// # Panics
    ///
    /// Panics if the page is free; see [`Block::invalidate`].
    pub fn invalidate(&mut self, ppa: Ppa) -> Result<()> {
        self.check_ppa(ppa)?;
        self.blocks[ppa.block.0 as usize].invalidate(ppa.page);
        Ok(())
    }

    /// Erases `block`, issued at `now`.
    ///
    /// The erase always completes and consumes erase time; if it exhausts
    /// the block's endurance, [`EraseOutcome::retired`] is set and the
    /// block refuses all further operations.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::BadBlock`] if the block was already retired.
    pub fn erase(&mut self, block: BlockId, now: Nanos) -> Result<EraseOutcome> {
        if self.block(block)?.status() == BlockStatus::Bad {
            return Err(FlashError::BadBlock(block));
        }
        // Decision consumed only for erases that will actually run.
        let erase_fault = self.erase_fault_fires();
        let endurance = self.endurance;
        let now_ns = now.as_nanos();
        let mut retired = match self.block_mut(block)?.erase(endurance, now_ns) {
            Ok(()) => false,
            Err(FlashError::BlockWornOut(_)) => true,
            Err(e) => return Err(e),
        };
        let plane = self.geo.plane_of(block);
        let done = self.sched.erase(plane, &self.timing, now);
        self.stats.erases += 1;
        self.obs.inc(Ctr::FlashErases);
        self.stats.busy += self.timing.erase;
        self.trace_op(
            FlashOpKind::Erase,
            OpOrigin::Internal,
            plane,
            block,
            0,
            now,
            done,
        );
        if erase_fault && !retired {
            // The erase pulse failed verification: the block becomes a
            // mid-life grown bad block, indistinguishable to callers from
            // a worn-out retirement.
            let wear = self.blocks[block.0 as usize].wear();
            self.blocks[block.0 as usize].retire();
            retired = true;
            self.trace_fault(
                done,
                FaultEvent::EraseFail {
                    block: block.0,
                    wear,
                },
            );
        }
        Ok(EraseOutcome { done, retired })
    }

    /// Copies the valid page at `src` into the next sequential page of
    /// `dst_block` without using channel/PCIe bandwidth — the NVMe
    /// *simple copy* command of §2.3. Returns the destination page offset,
    /// the copied stamp, and the completion instant.
    ///
    /// # Errors
    ///
    /// Fails if the source page is unwritten or invalid
    /// ([`FlashError::ReadUnwritten`] — copying dead data forward is an
    /// FTL bug), or if the destination cannot be programmed.
    pub fn copy_page(
        &mut self,
        src: Ppa,
        dst_block: BlockId,
        now: Nanos,
    ) -> Result<(u32, Stamp, Nanos)> {
        self.check_ppa(src)?;
        let stamp = match self.blocks[src.block.0 as usize].read(src.page)? {
            Some(s) => s,
            None => return Err(FlashError::ReadUnwritten(src)),
        };
        {
            let b = self.block(dst_block)?;
            if b.status() == BlockStatus::Bad {
                return Err(FlashError::BadBlock(dst_block));
            }
            if b.is_full() {
                return Err(FlashError::BlockFull(dst_block));
            }
        }
        if self.program_fault_fires() {
            return Err(self.burn_program(dst_block, now, OpOrigin::Internal));
        }
        let dst_page = self.block_mut(dst_block)?.program_next(stamp)?;
        let src_plane = self.geo.plane_of(src.block);
        let dst_plane = self.geo.plane_of(dst_block);
        let done = self.sched.copy(src_plane, dst_plane, &self.timing, now);
        self.stats.copies += 1;
        self.obs.inc(Ctr::FlashCopies);
        self.stats.busy += self.timing.read + self.timing.program;
        self.trace_op(
            FlashOpKind::Copy,
            OpOrigin::Internal,
            dst_plane,
            dst_block,
            dst_page,
            now,
            done,
        );
        Ok((dst_page, stamp, done))
    }

    /// Returns `(min, max, mean)` wear across all non-retired blocks, for
    /// wear-leveling verification.
    pub fn wear_spread(&self) -> (u32, u32, f64) {
        let mut min = u32::MAX;
        let mut max = 0u32;
        let mut sum = 0u64;
        let mut n = 0u64;
        for b in &self.blocks {
            if b.status() == BlockStatus::Bad {
                continue;
            }
            min = min.min(b.wear());
            max = max.max(b.wear());
            sum += b.wear() as u64;
            n += 1;
        }
        if n == 0 {
            (0, 0, 0.0)
        } else {
            (min, max, sum as f64 / n as f64)
        }
    }

    /// Counts blocks that have been retired as bad.
    pub fn bad_blocks(&self) -> u32 {
        self.blocks
            .iter()
            .filter(|b| b.status() == BlockStatus::Bad)
            .count() as u32
    }

    /// Direct access to the scheduler, for utilization reporting.
    pub fn scheduler(&self) -> &ResourceModel {
        &self.sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> FlashDevice {
        FlashDevice::new(FlashConfig::tlc(Geometry::small_test())).unwrap()
    }

    #[test]
    fn rejects_degenerate_geometry() {
        let mut geo = Geometry::small_test();
        geo.channels = 0;
        assert!(FlashDevice::new(FlashConfig::tlc(geo)).is_err());
    }

    #[test]
    fn program_read_roundtrip() {
        let mut d = dev();
        let (page, _) = d
            .program_next(BlockId(3), 77, Nanos::ZERO, OpOrigin::Host)
            .unwrap();
        let (stamp, _) = d
            .read(Ppa::new(BlockId(3), page), Nanos::ZERO, OpOrigin::Host)
            .unwrap();
        assert_eq!(stamp, Some(77));
        assert_eq!(d.stats().host_programs, 1);
        assert_eq!(d.stats().host_reads, 1);
    }

    #[test]
    fn out_of_range_is_caught() {
        let mut d = dev();
        let bad = Ppa::new(BlockId(999), 0);
        assert_eq!(
            d.read(bad, Nanos::ZERO, OpOrigin::Host),
            Err(FlashError::OutOfRange(bad))
        );
        assert!(matches!(
            d.program_next(BlockId(999), 0, Nanos::ZERO, OpOrigin::Host),
            Err(FlashError::BlockOutOfRange(_))
        ));
    }

    #[test]
    fn invalidate_then_read_returns_none() {
        let mut d = dev();
        let (page, _) = d
            .program_next(BlockId(0), 5, Nanos::ZERO, OpOrigin::Host)
            .unwrap();
        let ppa = Ppa::new(BlockId(0), page);
        d.invalidate(ppa).unwrap();
        let (stamp, _) = d.read(ppa, Nanos::ZERO, OpOrigin::Host).unwrap();
        assert_eq!(stamp, None);
    }

    #[test]
    fn erase_recycles_block() {
        let mut d = dev();
        for _ in 0..d.geometry().pages_per_block {
            d.program_next(BlockId(0), 1, Nanos::ZERO, OpOrigin::Host)
                .unwrap();
        }
        assert!(d.block(BlockId(0)).unwrap().is_full());
        let out = d.erase(BlockId(0), Nanos::ZERO).unwrap();
        assert!(!out.retired);
        assert!(d.block(BlockId(0)).unwrap().is_empty());
        assert_eq!(d.stats().erases, 1);
    }

    #[test]
    fn wear_out_retires_and_is_reported() {
        let geo = Geometry::small_test();
        let mut d = FlashDevice::new(FlashConfig {
            geometry: geo,
            cell: CellKind::Tlc,
            endurance_override: Some(2),
        })
        .unwrap();
        assert!(!d.erase(BlockId(0), Nanos::ZERO).unwrap().retired);
        assert!(d.erase(BlockId(0), Nanos::ZERO).unwrap().retired);
        assert_eq!(d.bad_blocks(), 1);
        assert_eq!(
            d.erase(BlockId(0), Nanos::ZERO),
            Err(FlashError::BadBlock(BlockId(0)))
        );
    }

    #[test]
    fn copy_moves_stamp_and_counts() {
        let mut d = dev();
        let (page, _) = d
            .program_next(BlockId(0), 42, Nanos::ZERO, OpOrigin::Host)
            .unwrap();
        let (dst_page, stamp, _) = d
            .copy_page(Ppa::new(BlockId(0), page), BlockId(8), Nanos::ZERO)
            .unwrap();
        assert_eq!(stamp, 42);
        let (read_back, _) = d
            .read(Ppa::new(BlockId(8), dst_page), Nanos::ZERO, OpOrigin::Host)
            .unwrap();
        assert_eq!(read_back, Some(42));
        assert_eq!(d.stats().copies, 1);
        // WA counts copies as physical programs.
        assert!(d.stats().write_amplification() > 1.0);
    }

    #[test]
    fn copy_of_invalid_page_is_rejected() {
        let mut d = dev();
        let (page, _) = d
            .program_next(BlockId(0), 9, Nanos::ZERO, OpOrigin::Host)
            .unwrap();
        let src = Ppa::new(BlockId(0), page);
        d.invalidate(src).unwrap();
        assert_eq!(
            d.copy_page(src, BlockId(8), Nanos::ZERO),
            Err(FlashError::ReadUnwritten(src))
        );
    }

    #[test]
    fn internal_ops_attributed_separately() {
        let mut d = dev();
        d.program_next(BlockId(0), 1, Nanos::ZERO, OpOrigin::Host)
            .unwrap();
        d.program_next(BlockId(0), 2, Nanos::ZERO, OpOrigin::Internal)
            .unwrap();
        assert_eq!(d.stats().host_programs, 1);
        assert_eq!(d.stats().internal_programs, 1);
        assert!((d.stats().write_amplification() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tracer_sees_every_op_with_coordinates() {
        let mut d = dev();
        d.set_tracer(Tracer::ring(64));
        d.program_next(BlockId(9), 1, Nanos::ZERO, OpOrigin::Host)
            .unwrap();
        d.read(Ppa::new(BlockId(9), 0), Nanos::ZERO, OpOrigin::Host)
            .unwrap();
        d.erase(BlockId(0), Nanos::ZERO).unwrap();
        let events = d.tracer().events();
        assert_eq!(events.len(), 3);
        match &events[0].event {
            bh_trace::Event::Flash(FlashEvent::Op {
                kind,
                plane,
                block,
                done,
                start,
                ..
            }) => {
                assert_eq!(*kind, FlashOpKind::Program);
                // Block 9 lives in plane 1 under small_test geometry.
                assert_eq!(*plane, 1);
                assert_eq!(*block, 9);
                assert!(done > start);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn read_of_retired_block_reports_bad_block() {
        // Lock-in: reads of a retired block must surface BadBlock, not
        // ReadUnwritten — retirement destroying the data is information
        // upper layers need.
        let mut d = FlashDevice::new(FlashConfig {
            geometry: Geometry::small_test(),
            cell: CellKind::Tlc,
            endurance_override: Some(1),
        })
        .unwrap();
        let (page, _) = d
            .program_next(BlockId(0), 7, Nanos::ZERO, OpOrigin::Host)
            .unwrap();
        assert!(d.erase(BlockId(0), Nanos::ZERO).unwrap().retired);
        assert_eq!(
            d.read(Ppa::new(BlockId(0), page), Nanos::ZERO, OpOrigin::Host),
            Err(FlashError::BadBlock(BlockId(0)))
        );
        assert_eq!(
            d.copy_page(Ppa::new(BlockId(0), page), BlockId(8), Nanos::ZERO),
            Err(FlashError::BadBlock(BlockId(0)))
        );
    }

    #[test]
    fn quiet_fault_plan_is_invisible() {
        // A quiet plan must leave behavior byte-identical to no plan.
        let mut clean = dev();
        let mut quiet = dev();
        quiet.install_faults(bh_faults::FaultConfig::new(0x51E7));
        for d in [&mut clean, &mut quiet] {
            for i in 0..8u64 {
                d.program_next(BlockId(0), i, Nanos::ZERO, OpOrigin::Host)
                    .unwrap();
            }
            for i in 0..8u32 {
                d.read(Ppa::new(BlockId(0), i), Nanos::ZERO, OpOrigin::Host)
                    .unwrap();
            }
            d.erase(BlockId(0), Nanos::ZERO).unwrap();
        }
        assert_eq!(clean.stats(), quiet.stats());
        assert_eq!(
            quiet.fault_counters(),
            Some(bh_faults::FaultCounters::default())
        );
    }

    #[test]
    fn injected_program_failure_burns_page() {
        let mut d = dev();
        d.install_faults(bh_faults::FaultConfig::new(7).with_program_fail_ppm(1_000_000));
        let err = d
            .program_next(BlockId(0), 5, Nanos::ZERO, OpOrigin::Host)
            .unwrap_err();
        assert_eq!(err, FlashError::ProgramFailed(Ppa::new(BlockId(0), 0)));
        // The page is consumed (cursor advanced, contents invalid) and the
        // work is charged as internal: no host data was delivered.
        let b = d.block(BlockId(0)).unwrap();
        assert_eq!(b.cursor(), 1);
        assert_eq!(b.valid_pages(), 0);
        assert_eq!(d.stats().host_programs, 0);
        assert_eq!(d.stats().internal_programs, 1);
        assert_eq!(d.fault_counters().unwrap().program_failures, 1);
        // Reading the burned page succeeds but yields no stamp.
        let (stamp, _) = d
            .read(Ppa::new(BlockId(0), 0), Nanos::ZERO, OpOrigin::Host)
            .unwrap();
        assert_eq!(stamp, None);
    }

    #[test]
    fn injected_copy_failure_burns_destination() {
        let mut d = dev();
        let (page, _) = d
            .program_next(BlockId(0), 42, Nanos::ZERO, OpOrigin::Host)
            .unwrap();
        d.install_faults(bh_faults::FaultConfig::new(7).with_program_fail_ppm(1_000_000));
        let err = d
            .copy_page(Ppa::new(BlockId(0), page), BlockId(8), Nanos::ZERO)
            .unwrap_err();
        assert_eq!(err, FlashError::ProgramFailed(Ppa::new(BlockId(8), 0)));
        // Source is untouched and still copyable once the fault clears.
        assert_eq!(d.block(BlockId(0)).unwrap().valid_pages(), 1);
        assert_eq!(d.block(BlockId(8)).unwrap().cursor(), 1);
    }

    #[test]
    fn injected_erase_failure_grows_bad_block() {
        let mut d = dev();
        d.install_faults(bh_faults::FaultConfig::new(7).with_erase_fail_ppm(1_000_000));
        let out = d.erase(BlockId(3), Nanos::ZERO).unwrap();
        assert!(out.retired);
        assert_eq!(d.bad_blocks(), 1);
        assert_eq!(d.fault_counters().unwrap().erase_failures, 1);
        assert_eq!(
            d.erase(BlockId(3), Nanos::ZERO),
            Err(FlashError::BadBlock(BlockId(3)))
        );
    }

    #[test]
    fn injected_read_retries_inflate_latency() {
        let mut clean = dev();
        let mut noisy = dev();
        noisy.install_faults(bh_faults::FaultConfig::new(7).with_read_retry_ppm(1_000_000));
        for d in [&mut clean, &mut noisy] {
            d.program_next(BlockId(0), 1, Nanos::ZERO, OpOrigin::Host)
                .unwrap();
        }
        let (_, t_clean) = clean
            .read(Ppa::new(BlockId(0), 0), Nanos::ZERO, OpOrigin::Host)
            .unwrap();
        let (stamp, t_noisy) = noisy
            .read(Ppa::new(BlockId(0), 0), Nanos::ZERO, OpOrigin::Host)
            .unwrap();
        // Data still comes back; the retries only cost time and plane
        // occupancy.
        assert_eq!(stamp, Some(1));
        assert!(t_noisy > t_clean);
        assert!(noisy.stats().internal_reads > clean.stats().internal_reads);
        assert!(noisy.fault_counters().unwrap().disturbed_reads == 1);
    }

    #[test]
    fn fault_events_are_traced() {
        let mut d = dev();
        d.set_tracer(Tracer::ring(64));
        d.install_faults(
            bh_faults::FaultConfig::new(7)
                .with_program_fail_ppm(1_000_000)
                .with_erase_fail_ppm(1_000_000),
        );
        let _ = d.program_next(BlockId(0), 5, Nanos::ZERO, OpOrigin::Host);
        let _ = d.erase(BlockId(1), Nanos::ZERO);
        let events = d.tracer().events();
        assert!(events.iter().any(|e| matches!(
            &e.event,
            bh_trace::Event::Fault(bh_trace::FaultEvent::ProgramFail { block: 0, .. })
        )));
        assert!(events.iter().any(|e| matches!(
            &e.event,
            bh_trace::Event::Fault(bh_trace::FaultEvent::EraseFail { block: 1, .. })
        )));
    }

    #[test]
    fn wear_spread_tracks_erases() {
        let mut d = dev();
        d.erase(BlockId(0), Nanos::ZERO).unwrap();
        d.erase(BlockId(0), Nanos::ZERO).unwrap();
        d.erase(BlockId(1), Nanos::ZERO).unwrap();
        let (min, max, mean) = d.wear_spread();
        assert_eq!(min, 0);
        assert_eq!(max, 2);
        assert!(mean > 0.0 && mean < 1.0);
    }
}
