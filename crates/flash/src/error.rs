//! Error type for flash operations.

use crate::geometry::{BlockId, Ppa};

/// Errors returned by [`crate::FlashDevice`] operations.
///
/// Each variant corresponds to a physical constraint from §2.1 of the
/// paper; producing one of these in an FTL is a bug in the FTL, which is
/// exactly why they are hard errors rather than silent corrections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// The address does not exist in the device geometry.
    OutOfRange(Ppa),
    /// The block identifier does not exist in the device geometry.
    BlockOutOfRange(BlockId),
    /// Attempted to program a page that is not the block's next sequential
    /// free page (violates the sequential-program rule).
    NonSequentialProgram {
        /// The offending address.
        ppa: Ppa,
        /// The page the block's internal write cursor expected next.
        expected: u32,
    },
    /// Attempted to program into a block with no erased pages remaining.
    BlockFull(BlockId),
    /// Attempted to read a page that has never been programmed since the
    /// last erase.
    ReadUnwritten(Ppa),
    /// The block has exceeded its endurance rating and is retired.
    BlockWornOut(BlockId),
    /// The block was previously retired (bad) and cannot be used.
    BadBlock(BlockId),
    /// A program operation failed transiently (injected fault): the page
    /// is burned — consumed but unreadable — and the caller must re-drive
    /// the data somewhere else.
    ProgramFailed(Ppa),
}

impl std::fmt::Display for FlashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlashError::OutOfRange(ppa) => write!(f, "address {ppa:?} out of range"),
            FlashError::BlockOutOfRange(b) => write!(f, "block {b:?} out of range"),
            FlashError::NonSequentialProgram { ppa, expected } => write!(
                f,
                "non-sequential program at {ppa:?}; block expected page {expected}"
            ),
            FlashError::BlockFull(b) => write!(f, "block {b:?} has no free pages"),
            FlashError::ReadUnwritten(ppa) => write!(f, "read of unwritten page {ppa:?}"),
            FlashError::BlockWornOut(b) => write!(f, "block {b:?} exceeded endurance"),
            FlashError::BadBlock(b) => write!(f, "block {b:?} is retired"),
            FlashError::ProgramFailed(ppa) => {
                write!(
                    f,
                    "program of {ppa:?} failed; page burned, re-drive elsewhere"
                )
            }
        }
    }
}

impl std::error::Error for FlashError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FlashError::NonSequentialProgram {
            ppa: Ppa::new(BlockId(3), 7),
            expected: 2,
        };
        let s = e.to_string();
        assert!(s.contains("B3.P7"));
        assert!(s.contains("expected page 2"));
    }
}
