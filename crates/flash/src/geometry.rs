//! Device geometry: the channel → die → plane → block → page hierarchy.
//!
//! Addressing is flattened into global identifiers: [`PlaneId`] and
//! [`BlockId`] number planes and erasure blocks across the whole device,
//! and a [`Ppa`] (physical page address) is a block plus a page offset.
//! Flat identifiers keep FTL mapping tables compact (one `u32`/`u64` per
//! entry — the paper's §2.2 DRAM math assumes exactly this).

use std::fmt;

/// Physical layout of a flash device.
///
/// # Examples
///
/// ```
/// use bh_flash::Geometry;
/// let geo = Geometry::small_test();
/// assert_eq!(geo.total_blocks(), geo.total_planes() * geo.blocks_per_plane);
/// assert!(geo.capacity_bytes() > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Independent channels (buses).
    pub channels: u32,
    /// Dies attached to each channel.
    pub dies_per_channel: u32,
    /// Planes per die; planes are the unit of array-operation parallelism.
    pub planes_per_die: u32,
    /// Erasure blocks per plane.
    pub blocks_per_plane: u32,
    /// Pages per erasure block.
    pub pages_per_block: u32,
    /// Page size in bytes (the read/program granularity, typically 4 KiB).
    pub page_bytes: u32,
}

impl Geometry {
    /// A small geometry for unit tests: 2 channels × 1 die × 2 planes ×
    /// 8 blocks × 16 pages × 4 KiB = 4 MiB.
    pub fn small_test() -> Self {
        Geometry {
            channels: 2,
            dies_per_channel: 1,
            planes_per_die: 2,
            blocks_per_plane: 8,
            pages_per_block: 16,
            page_bytes: 4096,
        }
    }

    /// A laptop-scale experiment geometry: 8 channels × 2 dies × 2 planes
    /// × `blocks_per_plane` blocks × 256 pages × 4 KiB. With the default
    /// 64 blocks per plane this is 2 GiB of flash; experiments scale
    /// `blocks_per_plane` to set capacity.
    pub fn experiment(blocks_per_plane: u32) -> Self {
        Geometry {
            channels: 8,
            dies_per_channel: 2,
            planes_per_die: 2,
            blocks_per_plane,
            pages_per_block: 256,
            page_bytes: 4096,
        }
    }

    /// Validates that every dimension is non-zero.
    ///
    /// Zero-sized dimensions would make address arithmetic divide by zero;
    /// [`crate::FlashDevice::new`] rejects such geometries up front.
    pub fn validate(&self) -> Result<(), String> {
        let dims = [
            ("channels", self.channels),
            ("dies_per_channel", self.dies_per_channel),
            ("planes_per_die", self.planes_per_die),
            ("blocks_per_plane", self.blocks_per_plane),
            ("pages_per_block", self.pages_per_block),
            ("page_bytes", self.page_bytes),
        ];
        for (name, v) in dims {
            if v == 0 {
                return Err(format!("geometry dimension `{name}` must be non-zero"));
            }
        }
        Ok(())
    }

    /// Total planes in the device.
    pub fn total_planes(&self) -> u32 {
        self.channels * self.dies_per_channel * self.planes_per_die
    }

    /// Total erasure blocks in the device.
    pub fn total_blocks(&self) -> u32 {
        self.total_planes() * self.blocks_per_plane
    }

    /// Total pages in the device.
    pub fn total_pages(&self) -> u64 {
        self.total_blocks() as u64 * self.pages_per_block as u64
    }

    /// Raw capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_bytes as u64
    }

    /// Erasure block size in bytes.
    pub fn block_bytes(&self) -> u64 {
        self.pages_per_block as u64 * self.page_bytes as u64
    }

    /// The plane containing a block.
    pub fn plane_of(&self, block: BlockId) -> PlaneId {
        PlaneId(block.0 / self.blocks_per_plane)
    }

    /// The channel a plane hangs off.
    pub fn channel_of(&self, plane: PlaneId) -> u32 {
        plane.0 / (self.dies_per_channel * self.planes_per_die)
    }

    /// The die containing a plane, numbered globally across the device.
    pub fn die_of(&self, plane: PlaneId) -> u32 {
        plane.0 / self.planes_per_die
    }

    /// The `index`-th block within `plane`.
    ///
    /// # Panics
    ///
    /// Panics if `plane` or `index` is out of range.
    pub fn block_in_plane(&self, plane: PlaneId, index: u32) -> BlockId {
        assert!(
            plane.0 < self.total_planes(),
            "plane {plane:?} out of range"
        );
        assert!(
            index < self.blocks_per_plane,
            "block index {index} out of range"
        );
        BlockId(plane.0 * self.blocks_per_plane + index)
    }

    /// Iterates over every block identifier in the device.
    pub fn blocks(&self) -> impl Iterator<Item = BlockId> {
        (0..self.total_blocks()).map(BlockId)
    }

    /// Converts a physical page address to a flat page index.
    pub fn page_index(&self, ppa: Ppa) -> u64 {
        ppa.block.0 as u64 * self.pages_per_block as u64 + ppa.page as u64
    }

    /// Converts a flat page index back to a physical page address.
    pub fn ppa_of_index(&self, index: u64) -> Ppa {
        Ppa {
            block: BlockId((index / self.pages_per_block as u64) as u32),
            page: (index % self.pages_per_block as u64) as u32,
        }
    }

    /// Returns true if `ppa` addresses a page inside the device.
    pub fn contains(&self, ppa: Ppa) -> bool {
        ppa.block.0 < self.total_blocks() && ppa.page < self.pages_per_block
    }
}

/// Identifier for a plane, global across the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlaneId(pub u32);

/// Identifier for an erasure block, global across the device.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// Physical page address: an erasure block plus a page offset within it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ppa {
    /// The erasure block.
    pub block: BlockId,
    /// Page offset within the block.
    pub page: u32,
}

impl Ppa {
    /// Creates a physical page address.
    pub fn new(block: BlockId, page: u32) -> Self {
        Ppa { block, page }
    }
}

impl fmt::Debug for Ppa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}.P{}", self.block.0, self.page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities_are_consistent() {
        let g = Geometry::small_test();
        assert_eq!(g.total_planes(), 4);
        assert_eq!(g.total_blocks(), 32);
        assert_eq!(g.total_pages(), 512);
        assert_eq!(g.capacity_bytes(), 512 * 4096);
        assert_eq!(g.block_bytes(), 16 * 4096);
    }

    #[test]
    fn validation_rejects_zero_dimensions() {
        let mut g = Geometry::small_test();
        assert!(g.validate().is_ok());
        g.pages_per_block = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn plane_and_channel_mapping() {
        let g = Geometry::small_test();
        // Blocks 0..8 are plane 0, 8..16 plane 1, etc.
        assert_eq!(g.plane_of(BlockId(0)), PlaneId(0));
        assert_eq!(g.plane_of(BlockId(7)), PlaneId(0));
        assert_eq!(g.plane_of(BlockId(8)), PlaneId(1));
        assert_eq!(g.plane_of(BlockId(31)), PlaneId(3));
        // 2 planes per channel (1 die × 2 planes).
        assert_eq!(g.channel_of(PlaneId(0)), 0);
        assert_eq!(g.channel_of(PlaneId(1)), 0);
        assert_eq!(g.channel_of(PlaneId(2)), 1);
    }

    #[test]
    fn block_in_plane_roundtrip() {
        let g = Geometry::small_test();
        for p in 0..g.total_planes() {
            for i in 0..g.blocks_per_plane {
                let b = g.block_in_plane(PlaneId(p), i);
                assert_eq!(g.plane_of(b), PlaneId(p));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_in_plane_rejects_bad_index() {
        let g = Geometry::small_test();
        g.block_in_plane(PlaneId(0), g.blocks_per_plane);
    }

    #[test]
    fn page_index_roundtrip() {
        let g = Geometry::small_test();
        for idx in [0u64, 1, 15, 16, 511] {
            assert_eq!(g.page_index(g.ppa_of_index(idx)), idx);
        }
    }

    #[test]
    fn contains_checks_bounds() {
        let g = Geometry::small_test();
        assert!(g.contains(Ppa::new(BlockId(0), 0)));
        assert!(g.contains(Ppa::new(BlockId(31), 15)));
        assert!(!g.contains(Ppa::new(BlockId(32), 0)));
        assert!(!g.contains(Ppa::new(BlockId(0), 16)));
    }

    #[test]
    fn blocks_iterator_covers_device() {
        let g = Geometry::small_test();
        assert_eq!(g.blocks().count() as u32, g.total_blocks());
    }
}
