//! Per-erasure-block state: page states, write cursor, wear.
//!
//! A [`Block`] enforces the two §2.1 invariants locally — erase before
//! program, and strictly sequential programming — and tracks the
//! valid/invalid page accounting that garbage collection policies consume.

use crate::error::FlashError;
use crate::geometry::{BlockId, Ppa};

/// The state of one page within a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// Erased and never programmed since.
    Free,
    /// Programmed and still logically live; carries the writer's stamp.
    Valid(u64),
    /// Programmed but since logically overwritten or deleted.
    Invalid,
}

/// Lifecycle status of the whole block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockStatus {
    /// Usable: erased or partially/fully programmed.
    Good,
    /// Retired after exceeding its endurance rating.
    Bad,
}

/// One erasure block: page states plus a sequential write cursor.
#[derive(Debug, Clone)]
pub struct Block {
    id: BlockId,
    pages: Vec<PageState>,
    /// Next page that may be programmed; equals `pages.len()` when full.
    cursor: u32,
    /// Completed program/erase cycles.
    wear: u32,
    /// Live (valid) page count, maintained incrementally.
    valid: u32,
    status: BlockStatus,
    /// Virtual timestamp of the last erase, for age-based GC policies.
    erased_at_ns: u64,
}

impl Block {
    /// Creates an erased block with `pages_per_block` free pages.
    pub fn new(id: BlockId, pages_per_block: u32) -> Self {
        Block {
            id,
            pages: vec![PageState::Free; pages_per_block as usize],
            cursor: 0,
            wear: 0,
            valid: 0,
            status: BlockStatus::Good,
            erased_at_ns: 0,
        }
    }

    /// The block's identifier.
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// Number of pages in the block.
    pub fn num_pages(&self) -> u32 {
        self.pages.len() as u32
    }

    /// Next programmable page offset; equals [`Block::num_pages`] when the
    /// block is full.
    pub fn cursor(&self) -> u32 {
        self.cursor
    }

    /// Free (erased, unprogrammed) pages remaining.
    pub fn free_pages(&self) -> u32 {
        self.num_pages() - self.cursor
    }

    /// Live page count.
    pub fn valid_pages(&self) -> u32 {
        self.valid
    }

    /// Programmed-but-dead page count.
    pub fn invalid_pages(&self) -> u32 {
        self.cursor - self.valid
    }

    /// Completed program/erase cycles.
    pub fn wear(&self) -> u32 {
        self.wear
    }

    /// Whether the block is usable or retired.
    pub fn status(&self) -> BlockStatus {
        self.status
    }

    /// Virtual timestamp (ns) of the last erase.
    pub fn erased_at_ns(&self) -> u64 {
        self.erased_at_ns
    }

    /// True when every page has been programmed.
    pub fn is_full(&self) -> bool {
        self.cursor == self.num_pages()
    }

    /// True when the block is erased and empty.
    pub fn is_empty(&self) -> bool {
        self.cursor == 0
    }

    /// Returns the state of page `page`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range; callers validate against the
    /// geometry first.
    pub fn page(&self, page: u32) -> PageState {
        self.pages[page as usize]
    }

    /// Programs the next sequential page with `stamp`, returning its
    /// offset.
    ///
    /// # Errors
    ///
    /// - [`FlashError::BadBlock`] if the block is retired.
    /// - [`FlashError::BlockFull`] if no free pages remain.
    pub fn program_next(&mut self, stamp: u64) -> Result<u32, FlashError> {
        if self.status == BlockStatus::Bad {
            return Err(FlashError::BadBlock(self.id));
        }
        if self.is_full() {
            return Err(FlashError::BlockFull(self.id));
        }
        let page = self.cursor;
        self.pages[page as usize] = PageState::Valid(stamp);
        self.cursor += 1;
        self.valid += 1;
        Ok(page)
    }

    /// Programs a specific page, which must be the next sequential one.
    ///
    /// # Errors
    ///
    /// In addition to [`Block::program_next`]'s errors, returns
    /// [`FlashError::NonSequentialProgram`] if `page != cursor`.
    pub fn program_at(&mut self, page: u32, stamp: u64) -> Result<(), FlashError> {
        if self.status == BlockStatus::Bad {
            return Err(FlashError::BadBlock(self.id));
        }
        if self.is_full() {
            return Err(FlashError::BlockFull(self.id));
        }
        if page != self.cursor {
            return Err(FlashError::NonSequentialProgram {
                ppa: Ppa::new(self.id, page),
                expected: self.cursor,
            });
        }
        self.program_next(stamp).map(|_| ())
    }

    /// Reads the stamp at `page`.
    ///
    /// # Errors
    ///
    /// - [`FlashError::BadBlock`] if the block has been retired — a
    ///   retired block's pages are gone, and reporting them as merely
    ///   "unwritten" would hide the retirement from upper layers.
    /// - [`FlashError::ReadUnwritten`] for free pages. Reading an
    ///   *invalid* page succeeds (the charge persists until erase) but
    ///   returns `None`, mirroring how real firmware can still sense
    ///   logically dead data.
    pub fn read(&self, page: u32) -> Result<Option<u64>, FlashError> {
        if self.status == BlockStatus::Bad {
            return Err(FlashError::BadBlock(self.id));
        }
        match self.pages[page as usize] {
            PageState::Free => Err(FlashError::ReadUnwritten(Ppa::new(self.id, page))),
            PageState::Valid(stamp) => Ok(Some(stamp)),
            PageState::Invalid => Ok(None),
        }
    }

    /// Burns the next sequential page: the program pulse ran and consumed
    /// the page, but the data did not take. The page lands `Invalid` and
    /// the cursor advances — exactly what a failed program leaves behind
    /// on real NAND (the page can never be re-programmed before an
    /// erase). Returns the burned page offset.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Block::program_next`].
    pub fn burn_next(&mut self) -> Result<u32, FlashError> {
        if self.status == BlockStatus::Bad {
            return Err(FlashError::BadBlock(self.id));
        }
        if self.is_full() {
            return Err(FlashError::BlockFull(self.id));
        }
        let page = self.cursor;
        self.pages[page as usize] = PageState::Invalid;
        self.cursor += 1;
        Ok(page)
    }

    /// Retires the block immediately (a grown bad block: an erase failed
    /// mid-life). Contents are destroyed, like a worn-out retirement.
    pub fn retire(&mut self) {
        self.pages.fill(PageState::Free);
        self.cursor = 0;
        self.valid = 0;
        self.status = BlockStatus::Bad;
    }

    /// Marks a programmed page invalid (logically overwritten/deleted).
    ///
    /// Idempotent for already-invalid pages.
    ///
    /// # Panics
    ///
    /// Panics if the page is still free — invalidating data that was never
    /// written is always an FTL accounting bug worth failing loudly on.
    pub fn invalidate(&mut self, page: u32) {
        match self.pages[page as usize] {
            PageState::Free => {
                panic!("invalidate of free page {:?}", Ppa::new(self.id, page))
            }
            PageState::Valid(_) => {
                self.pages[page as usize] = PageState::Invalid;
                self.valid -= 1;
            }
            PageState::Invalid => {}
        }
    }

    /// Erases the block, incrementing wear; retires it (returning
    /// [`FlashError::BlockWornOut`]) once wear exceeds `endurance`.
    ///
    /// `now_ns` is recorded for age-based GC policies.
    ///
    /// # Errors
    ///
    /// - [`FlashError::BadBlock`] if already retired.
    /// - [`FlashError::BlockWornOut`] when this erase exhausts endurance;
    ///   the block is retired and its contents destroyed.
    pub fn erase(&mut self, endurance: u32, now_ns: u64) -> Result<(), FlashError> {
        if self.status == BlockStatus::Bad {
            return Err(FlashError::BadBlock(self.id));
        }
        self.pages.fill(PageState::Free);
        self.cursor = 0;
        self.valid = 0;
        self.wear += 1;
        self.erased_at_ns = now_ns;
        if self.wear >= endurance {
            self.status = BlockStatus::Bad;
            return Err(FlashError::BlockWornOut(self.id));
        }
        Ok(())
    }

    /// Iterates over `(page, stamp)` for all currently valid pages.
    pub fn valid_entries(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.pages.iter().enumerate().filter_map(|(i, p)| match p {
            PageState::Valid(s) => Some((i as u32, *s)),
            _ => None,
        })
    }

    /// The first valid page at or after `start`, with its stamp. Lets
    /// incremental GC resume a valid-page scan where it left off instead
    /// of rescanning the block front on every copy.
    pub fn first_valid_from(&self, start: u32) -> Option<(u32, u64)> {
        self.pages
            .get(start as usize..)?
            .iter()
            .enumerate()
            .find_map(|(i, p)| match p {
                PageState::Valid(s) => Some((start + i as u32, *s)),
                _ => None,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> Block {
        Block::new(BlockId(0), 4)
    }

    #[test]
    fn fresh_block_is_empty_and_good() {
        let b = block();
        assert!(b.is_empty());
        assert!(!b.is_full());
        assert_eq!(b.free_pages(), 4);
        assert_eq!(b.valid_pages(), 0);
        assert_eq!(b.status(), BlockStatus::Good);
    }

    #[test]
    fn sequential_program_fills_block() {
        let mut b = block();
        for i in 0..4 {
            assert_eq!(b.program_next(100 + i as u64).unwrap(), i);
        }
        assert!(b.is_full());
        assert_eq!(b.program_next(0), Err(FlashError::BlockFull(BlockId(0))));
    }

    #[test]
    fn out_of_order_program_is_rejected() {
        let mut b = block();
        let err = b.program_at(2, 7).unwrap_err();
        assert!(matches!(
            err,
            FlashError::NonSequentialProgram { expected: 0, .. }
        ));
        b.program_at(0, 7).unwrap();
        b.program_at(1, 8).unwrap();
        assert!(b.program_at(3, 9).is_err());
    }

    #[test]
    fn read_semantics() {
        let mut b = block();
        assert_eq!(
            b.read(0),
            Err(FlashError::ReadUnwritten(Ppa::new(BlockId(0), 0)))
        );
        b.program_next(42).unwrap();
        assert_eq!(b.read(0), Ok(Some(42)));
        b.invalidate(0);
        assert_eq!(b.read(0), Ok(None));
    }

    #[test]
    fn invalidate_updates_counts_and_is_idempotent() {
        let mut b = block();
        b.program_next(1).unwrap();
        b.program_next(2).unwrap();
        assert_eq!(b.valid_pages(), 2);
        b.invalidate(0);
        assert_eq!(b.valid_pages(), 1);
        assert_eq!(b.invalid_pages(), 1);
        b.invalidate(0);
        assert_eq!(b.valid_pages(), 1);
    }

    #[test]
    #[should_panic(expected = "invalidate of free page")]
    fn invalidate_free_page_panics() {
        let mut b = block();
        b.invalidate(0);
    }

    #[test]
    fn erase_resets_and_wears() {
        let mut b = block();
        b.program_next(1).unwrap();
        b.erase(1000, 99).unwrap();
        assert!(b.is_empty());
        assert_eq!(b.wear(), 1);
        assert_eq!(b.erased_at_ns(), 99);
        assert_eq!(
            b.read(0),
            Err(FlashError::ReadUnwritten(Ppa::new(BlockId(0), 0)))
        );
    }

    #[test]
    fn wear_out_retires_block() {
        let mut b = block();
        b.erase(2, 0).unwrap(); // Wear 1 of 2.
        let err = b.erase(2, 0).unwrap_err(); // Wear 2 == endurance: retired.
        assert_eq!(err, FlashError::BlockWornOut(BlockId(0)));
        assert_eq!(b.status(), BlockStatus::Bad);
        assert_eq!(b.program_next(0), Err(FlashError::BadBlock(BlockId(0))));
        assert_eq!(b.erase(2, 0), Err(FlashError::BadBlock(BlockId(0))));
    }

    #[test]
    fn valid_entries_lists_live_pages_only() {
        let mut b = block();
        b.program_next(10).unwrap();
        b.program_next(11).unwrap();
        b.program_next(12).unwrap();
        b.invalidate(1);
        let entries: Vec<_> = b.valid_entries().collect();
        assert_eq!(entries, vec![(0, 10), (2, 12)]);
    }
}
