//! NAND flash substrate simulator.
//!
//! This crate models the flash device described in the paper's §2.1 primer:
//! a hierarchy of channels → dies → planes → erasure blocks → pages, with
//! the physical constraints that drive everything else in the paper:
//!
//! - **Erase-before-program**: a page can only be programmed after its
//!   containing erasure block has been erased.
//! - **Sequential program**: pages within an erasure block must be
//!   programmed strictly in order.
//! - **Asymmetric latency**: erase takes several times longer than program
//!   (≈6× for TLC), program several times longer than read.
//! - **Endurance**: each erase wears a block; worn-out blocks are retired.
//! - **Parallelism**: planes operate concurrently; a channel's bus is a
//!   shared transfer resource.
//!
//! Both SSD models in this repository — the conventional, page-mapped FTL
//! in `bh-conv`, and the zoned device in `bh-zns` — are built directly on
//! [`FlashDevice`]; neither touches flash state except through its
//! read/program/erase/copy operations, so every behaviour the paper
//! attributes to the interface difference emerges from the same substrate.
//!
//! Pages carry an opaque [`Stamp`] rather than byte payloads: the simulator
//! verifies data integrity end-to-end through stamps while keeping memory
//! proportional to device metadata, not device capacity (application-level
//! byte content lives in host-side models; see `bh-kv`).

pub mod block;
pub mod cell;
pub mod device;
pub mod error;
pub mod geometry;
pub mod sched;
pub mod stats;

pub use block::{Block, BlockStatus, PageState};
pub use cell::{CellKind, TimingSpec};
pub use device::{decode_oob, encode_oob, EraseOutcome, FlashConfig, FlashDevice, OpOrigin, Stamp};
pub use error::FlashError;
pub use geometry::{BlockId, Geometry, PlaneId, Ppa};
pub use sched::ResourceModel;
pub use stats::FlashStats;

/// Convenience result alias for flash operations.
pub type Result<T> = std::result::Result<T, FlashError>;
