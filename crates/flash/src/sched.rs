//! Resource/timing model: plane and channel occupancy.
//!
//! §2.1: "read and write operations exploit parallelism across thousands
//! of cells … multiple read/write operations are typically scheduled to
//! happen in parallel across multiple planes in each channel." The model
//! here captures exactly the two contended resources that matter for the
//! paper's performance claims:
//!
//! - each **plane** can run one array operation (read/program/erase) at a
//!   time, and
//! - each **channel** bus can move one page of data at a time.
//!
//! Every operation computes its completion instant from the issue instant
//! plus queueing behind whatever occupies those resources. This is what
//! makes garbage collection *interfere* with host reads on the
//! conventional device (§2.4) — GC programs and erases occupy planes that
//! host reads then wait for — without any explicit interference modeling.

use crate::cell::TimingSpec;
use crate::geometry::{Geometry, PlaneId};
use bh_metrics::Nanos;

/// Tracks when each plane and channel becomes free.
#[derive(Debug, Clone)]
pub struct ResourceModel {
    plane_free: Vec<Nanos>,
    channel_free: Vec<Nanos>,
    /// Cumulative busy time per plane, for utilization reporting.
    plane_busy: Vec<Nanos>,
    planes_per_channel: u32,
}

impl ResourceModel {
    /// Creates an idle resource model for `geo`.
    pub fn new(geo: &Geometry) -> Self {
        ResourceModel {
            plane_free: vec![Nanos::ZERO; geo.total_planes() as usize],
            channel_free: vec![Nanos::ZERO; geo.channels as usize],
            plane_busy: vec![Nanos::ZERO; geo.total_planes() as usize],
            planes_per_channel: geo.dies_per_channel * geo.planes_per_die,
        }
    }

    fn channel_of(&self, plane: PlaneId) -> usize {
        (plane.0 / self.planes_per_channel) as usize
    }

    /// Returns the instant `plane` becomes free.
    pub fn plane_free_at(&self, plane: PlaneId) -> Nanos {
        self.plane_free[plane.0 as usize]
    }

    /// Returns the cumulative busy time accrued by `plane`.
    pub fn plane_busy_time(&self, plane: PlaneId) -> Nanos {
        self.plane_busy[plane.0 as usize]
    }

    /// Counts planes still occupied at `now` — an instantaneous queue-depth
    /// proxy for the array, used by the trace sampler.
    pub fn busy_planes(&self, now: Nanos) -> u32 {
        self.plane_free.iter().filter(|&&free| free > now).count() as u32
    }

    fn occupy_plane(&mut self, plane: PlaneId, from: Nanos, dur: Nanos) -> (Nanos, Nanos) {
        let idx = plane.0 as usize;
        let start = from.max(self.plane_free[idx]);
        let end = start + dur;
        self.plane_free[idx] = end;
        self.plane_busy[idx] += dur;
        (start, end)
    }

    fn occupy_channel(&mut self, plane: PlaneId, from: Nanos, dur: Nanos) -> (Nanos, Nanos) {
        let idx = self.channel_of(plane);
        let start = from.max(self.channel_free[idx]);
        let end = start + dur;
        self.channel_free[idx] = end;
        (start, end)
    }

    /// Schedules a page read issued at `now`: array sense on the plane,
    /// then transfer over the channel. Returns the completion instant.
    pub fn read(
        &mut self,
        plane: PlaneId,
        timing: &TimingSpec,
        page_bytes: u32,
        now: Nanos,
    ) -> Nanos {
        let (_, array_end) = self.occupy_plane(plane, now, timing.read);
        let (_, bus_end) =
            self.occupy_channel(plane, array_end, timing.transfer(page_bytes as u64));
        bus_end
    }

    /// Schedules a page program issued at `now`: transfer over the channel,
    /// then array program on the plane. Returns the completion instant.
    pub fn program(
        &mut self,
        plane: PlaneId,
        timing: &TimingSpec,
        page_bytes: u32,
        now: Nanos,
    ) -> Nanos {
        let (_, bus_end) = self.occupy_channel(plane, now, timing.transfer(page_bytes as u64));
        let (_, array_end) = self.occupy_plane(plane, bus_end, timing.program);
        array_end
    }

    /// Schedules a block erase issued at `now`. Returns the completion
    /// instant. Erase uses no channel time.
    pub fn erase(&mut self, plane: PlaneId, timing: &TimingSpec, now: Nanos) -> Nanos {
        let (_, end) = self.occupy_plane(plane, now, timing.erase);
        end
    }

    /// Schedules a device-internal page copy (NVMe *simple copy*, §2.3):
    /// array read on the source plane, array program on the destination
    /// plane, **no channel/PCIe time** — exactly the property the paper
    /// highlights ("does not use any PCIe bandwidth").
    pub fn copy(
        &mut self,
        src_plane: PlaneId,
        dst_plane: PlaneId,
        timing: &TimingSpec,
        now: Nanos,
    ) -> Nanos {
        let (_, read_end) = self.occupy_plane(src_plane, now, timing.read);
        let (_, prog_end) = self.occupy_plane(dst_plane, read_end, timing.program);
        prog_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;
    use crate::geometry::Geometry;

    fn setup() -> (ResourceModel, TimingSpec) {
        (
            ResourceModel::new(&Geometry::small_test()),
            CellKind::Tlc.timing(),
        )
    }

    #[test]
    fn read_takes_array_plus_transfer() {
        let (mut rm, t) = setup();
        let done = rm.read(PlaneId(0), &t, 4096, Nanos::ZERO);
        assert_eq!(done, t.read + t.transfer(4096));
    }

    #[test]
    fn back_to_back_reads_on_one_plane_serialize() {
        let (mut rm, t) = setup();
        let d1 = rm.read(PlaneId(0), &t, 4096, Nanos::ZERO);
        let d2 = rm.read(PlaneId(0), &t, 4096, Nanos::ZERO);
        assert!(d2 > d1);
        // Second read's array phase waits for the first to release the
        // plane, so it completes at least one array time later.
        assert!(d2 >= d1 + t.read);
    }

    #[test]
    fn reads_on_different_channels_run_in_parallel() {
        let (mut rm, t) = setup();
        // small_test has 2 planes per channel: planes 0,1 -> ch0; 2,3 -> ch1.
        let d1 = rm.read(PlaneId(0), &t, 4096, Nanos::ZERO);
        let d2 = rm.read(PlaneId(2), &t, 4096, Nanos::ZERO);
        assert_eq!(d1, d2);
    }

    #[test]
    fn same_channel_different_plane_shares_only_bus() {
        let (mut rm, t) = setup();
        let d1 = rm.read(PlaneId(0), &t, 4096, Nanos::ZERO);
        let d2 = rm.read(PlaneId(1), &t, 4096, Nanos::ZERO);
        // Arrays overlap; only transfers serialize.
        assert_eq!(d2, d1 + t.transfer(4096));
    }

    #[test]
    fn erase_blocks_subsequent_read_on_same_plane() {
        let (mut rm, t) = setup();
        let erase_done = rm.erase(PlaneId(0), &t, Nanos::ZERO);
        let read_done = rm.read(PlaneId(0), &t, 4096, Nanos::ZERO);
        // This is GC interference in miniature: the read waited out the
        // entire erase.
        assert!(read_done >= erase_done + t.read);
    }

    #[test]
    fn copy_uses_no_channel_time() {
        let (mut rm, t) = setup();
        let copy_done = rm.copy(PlaneId(0), PlaneId(1), &t, Nanos::ZERO);
        assert_eq!(copy_done, t.read + t.program);
        // Channel is still free: a read issued now is not delayed on the bus.
        let read_done = rm.read(PlaneId(2), &t, 4096, Nanos::ZERO);
        assert_eq!(read_done, t.read + t.transfer(4096));
    }

    #[test]
    fn busy_time_accumulates() {
        let (mut rm, t) = setup();
        rm.read(PlaneId(0), &t, 4096, Nanos::ZERO);
        rm.erase(PlaneId(0), &t, Nanos::ZERO);
        assert_eq!(rm.plane_busy_time(PlaneId(0)), t.read + t.erase);
        assert_eq!(rm.plane_busy_time(PlaneId(1)), Nanos::ZERO);
    }
}
