//! Flash operation counters, split by origin.
//!
//! Write amplification — the paper's central quantitative lens (§2.2) — is
//! a ratio of *physical* page programs to *host-intended* page writes. The
//! stats here therefore attribute every operation to an
//! [`crate::OpOrigin`], so FTLs and host stacks can report WA without any
//! bookkeeping of their own.

use bh_metrics::Nanos;

/// Cumulative operation counters for one device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlashStats {
    /// Pages read on behalf of the host.
    pub host_reads: u64,
    /// Pages programmed on behalf of the host.
    pub host_programs: u64,
    /// Pages read by internal machinery (GC, wear leveling, copies).
    pub internal_reads: u64,
    /// Pages programmed by internal machinery.
    pub internal_programs: u64,
    /// Blocks erased (any origin).
    pub erases: u64,
    /// Device-internal page copies (simple-copy style).
    pub copies: u64,
    /// Sum of all array+bus time consumed, a coarse device-work proxy.
    pub busy: Nanos,
}

impl FlashStats {
    /// Total page programs from any origin.
    pub fn total_programs(&self) -> u64 {
        self.host_programs + self.internal_programs + self.copies
    }

    /// Write amplification factor: physical programs per host program.
    ///
    /// Returns `1.0` when the device is idle (no programs from any
    /// origin), and `f64::INFINITY` when internal work happened without a
    /// single host program — previously this case was misreported as
    /// `1.0`, hiding pure-overhead intervals from interval-WA series.
    pub fn write_amplification(&self) -> f64 {
        if self.host_programs == 0 {
            return if self.internal_programs + self.copies == 0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        self.total_programs() as f64 / self.host_programs as f64
    }

    /// Returns the difference `self - earlier`, for interval reporting.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` has larger counters (counters
    /// are monotone).
    pub fn delta_since(&self, earlier: &FlashStats) -> FlashStats {
        FlashStats {
            host_reads: self.host_reads - earlier.host_reads,
            host_programs: self.host_programs - earlier.host_programs,
            internal_reads: self.internal_reads - earlier.internal_reads,
            internal_programs: self.internal_programs - earlier.internal_programs,
            erases: self.erases - earlier.erases,
            copies: self.copies - earlier.copies,
            busy: self.busy - earlier.busy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wa_is_one_when_idle() {
        assert_eq!(FlashStats::default().write_amplification(), 1.0);
    }

    #[test]
    fn wa_is_infinite_for_pure_internal_work() {
        let s = FlashStats {
            internal_programs: 4,
            ..FlashStats::default()
        };
        assert!(s.write_amplification().is_infinite());
        let c = FlashStats {
            copies: 1,
            ..FlashStats::default()
        };
        assert!(c.write_amplification().is_infinite());
    }

    #[test]
    fn wa_counts_internal_and_copies() {
        let s = FlashStats {
            host_programs: 100,
            internal_programs: 30,
            copies: 20,
            ..FlashStats::default()
        };
        assert!((s.write_amplification() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = FlashStats {
            host_reads: 10,
            host_programs: 5,
            erases: 2,
            ..FlashStats::default()
        };
        let b = FlashStats {
            host_reads: 25,
            host_programs: 9,
            erases: 3,
            ..FlashStats::default()
        };
        let d = b.delta_since(&a);
        assert_eq!(d.host_reads, 15);
        assert_eq!(d.host_programs, 4);
        assert_eq!(d.erases, 1);
    }
}
