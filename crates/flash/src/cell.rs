//! Cell technologies and their timing/endurance characteristics.
//!
//! §2.1 of the paper: a NAND cell stores one (SLC) to five (PLC) bits.
//! Higher densities are cheaper per gigabyte but slower to program and far
//! less durable. The numbers below are representative of datasheets and
//! the literature the paper cites; the paper's only hard constraint —
//! erase ≈ 6× program for TLC [54] — holds for [`CellKind::Tlc`].

use bh_metrics::Nanos;

/// NAND cell technology, by bits stored per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Single-level cell: 1 bit.
    Slc,
    /// Multi-level cell: 2 bits.
    Mlc,
    /// Triple-level cell: 3 bits (the common datacenter choice).
    Tlc,
    /// Quad-level cell: 4 bits (the density hyperscalers want ZNS for).
    Qlc,
    /// Penta-level cell: 5 bits.
    Plc,
}

impl CellKind {
    /// Bits stored per cell.
    pub fn bits_per_cell(self) -> u32 {
        match self {
            CellKind::Slc => 1,
            CellKind::Mlc => 2,
            CellKind::Tlc => 3,
            CellKind::Qlc => 4,
            CellKind::Plc => 5,
        }
    }

    /// Rated program/erase cycles before a block wears out.
    pub fn endurance_cycles(self) -> u32 {
        match self {
            CellKind::Slc => 100_000,
            CellKind::Mlc => 10_000,
            CellKind::Tlc => 3_000,
            CellKind::Qlc => 1_000,
            CellKind::Plc => 500,
        }
    }

    /// Representative operation timings for this cell technology.
    pub fn timing(self) -> TimingSpec {
        match self {
            CellKind::Slc => TimingSpec {
                read: Nanos::from_micros(25),
                program: Nanos::from_micros(200),
                erase: Nanos::from_millis(2),
                channel_bytes_per_sec: 1_200_000_000,
            },
            CellKind::Mlc => TimingSpec {
                read: Nanos::from_micros(55),
                program: Nanos::from_micros(400),
                erase: Nanos::from_micros(3_000),
                channel_bytes_per_sec: 1_200_000_000,
            },
            CellKind::Tlc => TimingSpec {
                // Erase is ~6x program, matching §2.1's citation of [54].
                read: Nanos::from_micros(75),
                program: Nanos::from_micros(660),
                erase: Nanos::from_micros(3_960),
                channel_bytes_per_sec: 1_200_000_000,
            },
            CellKind::Qlc => TimingSpec {
                read: Nanos::from_micros(140),
                program: Nanos::from_micros(2_000),
                erase: Nanos::from_millis(10),
                channel_bytes_per_sec: 1_200_000_000,
            },
            CellKind::Plc => TimingSpec {
                read: Nanos::from_micros(200),
                program: Nanos::from_micros(5_000),
                erase: Nanos::from_millis(20),
                channel_bytes_per_sec: 1_200_000_000,
            },
        }
    }
}

/// Flash array and bus timings for one cell technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingSpec {
    /// Array time to sense one page.
    pub read: Nanos,
    /// Array time to program one page.
    pub program: Nanos,
    /// Array time to erase one block.
    pub erase: Nanos,
    /// Channel bus bandwidth in bytes per second.
    pub channel_bytes_per_sec: u64,
}

impl TimingSpec {
    /// Time to move `bytes` across the channel bus.
    pub fn transfer(&self, bytes: u64) -> Nanos {
        // Round up so a transfer is never free.
        let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(self.channel_bytes_per_sec as u128);
        Nanos::from_nanos(ns as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_ordering() {
        let kinds = [
            CellKind::Slc,
            CellKind::Mlc,
            CellKind::Tlc,
            CellKind::Qlc,
            CellKind::Plc,
        ];
        for w in kinds.windows(2) {
            assert!(w[0].bits_per_cell() < w[1].bits_per_cell());
            assert!(w[0].endurance_cycles() > w[1].endurance_cycles());
            assert!(w[0].timing().program < w[1].timing().program);
        }
    }

    #[test]
    fn tlc_erase_is_about_six_times_program() {
        let t = CellKind::Tlc.timing();
        let ratio = t.erase.as_nanos() as f64 / t.program.as_nanos() as f64;
        assert!((5.5..6.5).contains(&ratio), "erase/program ratio {ratio}");
    }

    #[test]
    fn erase_slower_than_program_slower_than_read() {
        for k in [
            CellKind::Slc,
            CellKind::Mlc,
            CellKind::Tlc,
            CellKind::Qlc,
            CellKind::Plc,
        ] {
            let t = k.timing();
            assert!(t.read < t.program, "{k:?}");
            assert!(t.program < t.erase, "{k:?}");
        }
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let t = CellKind::Tlc.timing();
        let one = t.transfer(4096);
        let two = t.transfer(8192);
        assert!(one > Nanos::ZERO);
        assert!(two >= one * 2 - Nanos::from_nanos(1));
        assert_eq!(t.transfer(0), Nanos::ZERO);
    }
}
