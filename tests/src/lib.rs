//! Integration-test package: the tests live in `tests/tests/`, spanning
//! every crate in the workspace.
