//! Cross-layer trace consistency: the instrumentation must agree with
//! the devices it observes.
//!
//! Three properties anchor the tracing subsystem:
//!
//! 1. GC episodes recorded by the conventional FTL pair up (every begin
//!    has its end) and carry monotone virtual timestamps.
//! 2. Replaying the recorded ZNS zone transitions reproduces exactly the
//!    zone states the device itself reports at the end of the run.
//! 3. Disabled tracing records nothing, and the bounded ring degrades by
//!    dropping its oldest events — never by panicking or growing.

use bh_conv::{ConvConfig, ConvSsd};
use bh_flash::{FlashConfig, Geometry};
use bh_metrics::Nanos;
use bh_trace::replay;
use bh_trace::{CacheEvent, Event, Tracer, ZoneStateTag};
use bh_zns::{ZnsConfig, ZnsDevice, ZoneId, ZoneState};

fn churn_conv(tracer: Tracer) -> ConvSsd {
    let mut ssd = ConvSsd::new(ConvConfig::new(
        FlashConfig::tlc(Geometry::small_test()),
        0.15,
    ))
    .unwrap();
    ssd.set_tracer(tracer);
    let cap = ssd.capacity_pages();
    let mut t = Nanos::ZERO;
    for lba in 0..cap {
        t = ssd.write(lba, t).unwrap().done;
    }
    // Overwrite enough to force garbage collection.
    let mut x = 7u64;
    for _ in 0..3 * cap {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        t = ssd.write(x % cap, t).unwrap().done;
    }
    ssd
}

/// (a) Every GC begin has a matching end, and timestamps are monotone.
#[test]
fn gc_spans_are_balanced_with_monotone_time() {
    let tracer = Tracer::ring(1 << 20);
    let ssd = churn_conv(tracer.clone());
    let events = tracer.events();
    let episodes = replay::gc_episodes(&events).expect("consistent begin/end pairing");
    assert!(!episodes.is_empty(), "churn must have triggered GC");
    let mut last_begin = Nanos::ZERO;
    let mut closed = 0u64;
    for ep in &episodes {
        // GC is paced, so at most one victim per plane is still in
        // flight when the run stops; every other episode is closed.
        if let Some(end) = ep.end {
            assert!(end >= ep.begin, "episode ends after it begins");
            // Host writes during a paced episode can invalidate pages
            // the begin event promised, never add to them.
            assert!(ep.pages_copied <= ep.valid, "GC copies at most `valid`");
            closed += 1;
        }
        assert!(ep.begin >= last_begin, "episodes begin in time order");
        last_begin = ep.begin;
    }
    // Closed episodes end by erasing their victim; the device's own
    // erase counter must agree exactly.
    assert_eq!(closed, ssd.ftl_stats().gc_erases);
    assert!(
        episodes.len() as u64 - closed <= 4,
        "one open victim per plane"
    );
}

/// (b) Replaying recorded zone transitions reproduces the device state.
#[test]
fn zns_transitions_replay_to_reported_zone_states() {
    let cfg = ZnsConfig::new(FlashConfig::tlc(Geometry::small_test()), 4).with_zone_limits(8);
    let mut dev = ZnsDevice::new(cfg).unwrap();
    let tracer = Tracer::ring(1 << 20);
    dev.set_tracer(tracer.clone());
    let zone_pages = dev.zone(ZoneId(0)).unwrap().capacity();
    let mut t = Nanos::ZERO;
    // Exercise the state machine: fill two zones, partially write one,
    // explicitly open one, close it, and reset a full one.
    for z in [0u32, 1] {
        for p in 0..zone_pages {
            t = dev.write(ZoneId(z), p, 1, t).unwrap();
        }
    }
    for p in 0..zone_pages / 2 {
        t = dev.write(ZoneId(2), p, 2, t).unwrap();
    }
    dev.open(ZoneId(3)).unwrap();
    dev.close(ZoneId(3)).unwrap();
    t = dev.reset(ZoneId(1), t).unwrap();
    let _ = t;

    let replayed = replay::zone_states(&tracer.events());
    for z in dev.zones() {
        let reported = match z.state() {
            ZoneState::Empty => ZoneStateTag::Empty,
            ZoneState::ImplicitlyOpened => ZoneStateTag::ImplicitlyOpened,
            ZoneState::ExplicitlyOpened => ZoneStateTag::ExplicitlyOpened,
            ZoneState::Closed => ZoneStateTag::Closed,
            ZoneState::Full => ZoneStateTag::Full,
            ZoneState::ReadOnly => ZoneStateTag::ReadOnly,
            ZoneState::Offline => ZoneStateTag::Offline,
        };
        // Untouched zones never transitioned and stay out of the replay.
        let replayed_state = replayed
            .get(&z.id().0)
            .copied()
            .unwrap_or(ZoneStateTag::Empty);
        assert_eq!(replayed_state, reported, "zone {}", z.id().0);
    }
    // The run above touched zones 0..=3 and must have recorded them.
    assert!(replayed.len() >= 4);
}

/// (c) The null sink records nothing; the ring drops oldest, no panic.
#[test]
fn null_sink_records_nothing_and_ring_drops_oldest() {
    // Disabled tracer through a full device run: zero events, no cost.
    let tracer = Tracer::disabled();
    let _ssd = churn_conv(tracer.clone());
    assert!(!tracer.enabled());
    assert_eq!(tracer.len(), 0);
    assert_eq!(tracer.dropped(), 0);
    assert!(tracer.events().is_empty());

    // A tiny ring under the same churn keeps only the newest window.
    let small = Tracer::ring(64);
    let _ssd = churn_conv(small.clone());
    assert_eq!(small.len(), 64);
    assert!(small.dropped() > 0, "churn overflows a 64-slot ring");
    let events = small.events();
    assert_eq!(events.len(), 64);
    // Retained events are the most recent: sequence numbers are the tail
    // of the full stream and strictly increasing.
    let total = small.dropped() + 64;
    assert_eq!(events.last().unwrap().seq, total - 1, "seq starts at zero");
    for w in events.windows(2) {
        assert!(w[1].seq > w[0].seq);
    }

    // Overflow keeps accepting writes of every event family.
    for i in 0..200u64 {
        small.emit(Nanos::from_nanos(i), CacheEvent::Evict { pages: i });
    }
    assert_eq!(small.len(), 64);
    assert!(matches!(
        small.events().last().unwrap().event,
        Event::Cache(CacheEvent::Evict { pages: 199 })
    ));
}
