//! The observability transparency property: enabling the bh-obs
//! registry (and the phase profiler) must not change a single bit of
//! any run's outcome — not a histogram bucket, not a virtual-time
//! stamp, not a write-amplification figure.
//!
//! Both stacks, both runner paths (serial and queued), several seeds.
//! The fingerprint deliberately covers everything a report can render:
//! latency histogram buckets, virtual elapsed time, error counts, the
//! f64 bit pattern of device WA, and the raw flash counters.

use bh_conv::{ConvConfig, ConvSsd};
use bh_core::{BlockInterface, Pacing, QueueCore, RunConfig, RunResult, Runner, StackAdmin};
use bh_flash::{FlashConfig, Geometry};
use bh_host::{BlockEmu, ReclaimPolicy};
use bh_metrics::Nanos;
use bh_obs::{profiler, Obs};
use bh_trace::Tracer;
use bh_workloads::{OpMix, OpStream};
use bh_zns::{ZnsConfig, ZnsDevice};

fn conv() -> ConvSsd {
    ConvSsd::new(ConvConfig::new(
        FlashConfig::tlc(Geometry::small_test()),
        0.15,
    ))
    .unwrap()
}

fn emu() -> BlockEmu {
    let cfg = ZnsConfig::new(FlashConfig::tlc(Geometry::small_test()), 4).with_zone_limits(8);
    BlockEmu::new(ZnsDevice::new(cfg).unwrap(), 2, ReclaimPolicy::Immediate)
}

/// Everything a report could derive from this run, rendered to a
/// string so a mismatch prints both sides.
fn fingerprint(dev: &dyn BlockInterface, res: &RunResult) -> String {
    let s = dev.flash_stats();
    format!(
        "reads={:?} writes={:?} elapsed={} errors={} wa={:016x} peak={} \
         host_p={} int_p={} copies={} host_r={} int_r={} erases={} busy={}",
        res.reads.buckets().collect::<Vec<_>>(),
        res.writes.buckets().collect::<Vec<_>>(),
        res.elapsed.as_nanos(),
        res.errors,
        res.device_wa.to_bits(),
        res.peak_in_flight,
        s.host_programs,
        s.internal_programs,
        s.copies,
        s.host_reads,
        s.internal_reads,
        s.erases,
        s.busy.as_nanos(),
    )
}

fn run_once(dev: &mut dyn BlockInterface, seed: u64, qd: usize, obs: Obs) -> String {
    let t = Runner::fill(dev, Nanos::ZERO).unwrap();
    let mut stream = OpStream::zipfian(dev.capacity_pages(), OpMix::read_heavy(), seed);
    let runner = Runner::new(
        RunConfig::new(2_000)
            .with_pacing(Pacing::Closed)
            .with_maintenance_every(64)
            .with_queue_depth(qd),
    )
    .with_obs(obs);
    let res = runner.run(dev, &mut stream, t).unwrap();
    fingerprint(dev, &res)
}

/// The same transparency property, pinned to each queued dispatch core
/// by name — and widened to the event tracer: a fully instrumented run
/// (obs registry + wall-clock profiler + a live trace ring) must be
/// bit-identical to a bare one at queue depth > 1, whichever core
/// retires the completions.
#[test]
fn instrumentation_never_moves_a_bit_on_either_queue_core() {
    for core in [QueueCore::Event, QueueCore::Polling] {
        for conv_stack in [true, false] {
            for qd in [4usize, 16] {
                let run = |instrumented: bool| -> String {
                    let mut dev: Box<dyn StackAdmin> = if conv_stack {
                        Box::new(conv())
                    } else {
                        Box::new(emu())
                    };
                    let obs = if instrumented {
                        Obs::enabled()
                    } else {
                        Obs::disabled()
                    };
                    if instrumented {
                        dev.set_obs(obs.clone());
                        dev.set_tracer(Tracer::ring(1 << 14));
                        profiler::set_enabled(true);
                    }
                    let t = Runner::fill(dev.as_mut(), Nanos::ZERO).unwrap();
                    let mut stream =
                        OpStream::zipfian(dev.capacity_pages(), OpMix::read_heavy(), 0xB17);
                    let runner = Runner::new(
                        RunConfig::new(1_500)
                            .with_maintenance_every(64)
                            .with_queue_depth(qd)
                            .with_queue_core(core),
                    )
                    .with_obs(obs);
                    let res = runner.run(dev.as_mut(), &mut stream, t).unwrap();
                    if instrumented {
                        profiler::set_enabled(false);
                        let _ = profiler::take();
                    }
                    fingerprint(dev.as_ref(), &res)
                };
                let bare = run(false);
                let full = run(true);
                assert_eq!(
                    bare,
                    full,
                    "instrumentation perturbed the run: core={core:?} stack={} qd={qd}",
                    if conv_stack { "conv" } else { "zns+emu" }
                );
            }
        }
    }
}

/// Run the identical workload with the registry off and on (and, on
/// the instrumented run, the wall-clock profiler too), on both stacks
/// and both runner paths. Every fingerprint must match bit-for-bit.
#[test]
fn obs_never_moves_a_bit_of_any_run() {
    for seed in [7u64, 0x0B5, 0xDEAD] {
        for qd in [1usize, 8] {
            for conv_stack in [true, false] {
                let mut plain: Box<dyn BlockInterface> = if conv_stack {
                    Box::new(conv())
                } else {
                    Box::new(emu())
                };
                let off = run_once(plain.as_mut(), seed, qd, Obs::disabled());

                // Install through the concrete types (BlockInterface has
                // no admin plane; StackAdmin covers that path in
                // bh-core's own tests).
                let obs = Obs::enabled();
                let mut instrumented: Box<dyn BlockInterface> = if conv_stack {
                    let mut d = conv();
                    d.set_obs(obs.clone());
                    Box::new(d)
                } else {
                    let mut d = emu();
                    d.set_obs(obs.clone());
                    Box::new(d)
                };
                profiler::set_enabled(true);
                let on = run_once(instrumented.as_mut(), seed, qd, obs.clone());
                profiler::set_enabled(false);
                let _ = profiler::take();

                assert_eq!(
                    off,
                    on,
                    "obs perturbed the run: stack={} seed={seed:#x} qd={qd}",
                    if conv_stack { "conv" } else { "zns+emu" }
                );
                assert!(
                    !obs.snapshot().is_zero(),
                    "instrumented run must actually have observed something"
                );
            }
        }
    }
}
