//! Property tests for the event-driven queue core, driven directly
//! through [`QueueEngine`]'s sink API against synthetic devices whose
//! latency we control exactly — so the properties can force the awkward
//! cases (completion-instant ties, deep windows, arrival bursts) that
//! real stacks only hit by luck.
//!
//! Four invariants, matching the calendar's contract:
//!
//! 1. **No early firing**: a completion is only ever delivered once the
//!    arrival clock has reached its completion instant.
//! 2. **Deterministic ties**: ops completing at the same instant retire
//!    in cid order, identically across runs.
//! 3. **Total order**: the retirement stream is strictly increasing in
//!    `(completed, cid)` under random depths and bursts.
//! 4. **Crash prefix**: `cut(at)` acknowledges exactly the prefix the
//!    preserved polling oracle acknowledges.

use bh_core::{IoCompletion, IoRequest, PollingEngine, QueueEngine};
use bh_metrics::Nanos;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A synthetic device: latency is a pure function of the request and
/// the issue instant, so both engines see bit-identical service times
/// without any real stack in the loop.
fn synth_exec(req: &IoRequest, t: Nanos) -> (Nanos, Result<(), String>) {
    let lba = match *req {
        IoRequest::Read { lba } | IoRequest::Write { lba, .. } | IoRequest::Trim { lba } => lba,
        IoRequest::Maintenance => 7,
    };
    // Mix the lba and issue time into a latency in [100ns, 12.8µs);
    // occasionally fail so result plumbing is exercised too.
    let h = lba
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(t.as_nanos())
        .rotate_left(17);
    let lat = 100 + (h % 12_700);
    if h % 97 == 0 {
        (t, Err(format!("synthetic fault on lba {lba}")))
    } else {
        (t + Nanos::from_nanos(lat), Ok(()))
    }
}

/// Quantized latency: many distinct ops land on the *same* completion
/// instant, forcing the calendar's cid tie-break constantly.
fn tie_exec(req: &IoRequest, t: Nanos) -> (Nanos, Result<(), String>) {
    let lba = match *req {
        IoRequest::Read { lba } | IoRequest::Write { lba, .. } | IoRequest::Trim { lba } => lba,
        IoRequest::Maintenance => 0,
    };
    // Round the completion up to a coarse 4µs grid.
    let done = (t.as_nanos() + 1 + (lba % 3)).div_ceil(4_000) * 4_000;
    (Nanos::from_nanos(done), Ok(()))
}

fn random_req(rng: &mut SmallRng) -> IoRequest {
    let lba = rng.gen_range(0..4096);
    match rng.gen_range(0..10) {
        0..=5 => IoRequest::Read { lba },
        6..=8 => IoRequest::Write { lba, hint: None },
        _ => IoRequest::Trim { lba },
    }
}

/// Bursty arrival clock: tight intra-burst spacing, occasional long
/// idle gaps — the pattern that makes the event core skip time.
fn advance(rng: &mut SmallRng, arrival: Nanos) -> Nanos {
    if rng.gen_bool(0.07) {
        arrival + Nanos::from_nanos(rng.gen_range(50_000..400_000))
    } else {
        arrival + Nanos::from_nanos(rng.gen_range(0..800))
    }
}

/// Property 1 + 3: under random depths and bursty arrivals, the sink
/// never sees a completion before the clock reaches it, and the stream
/// is strictly increasing in `(completed, cid)`.
#[test]
fn events_never_fire_early_and_retire_in_order() {
    let mut rng = SmallRng::seed_from_u64(0xE4E2);
    for round in 0..8 {
        let qd = rng.gen_range(1..=64);
        let mut engine: QueueEngine<String> = QueueEngine::new(qd);
        let mut arrival = Nanos::ZERO;
        let mut prev: Option<(Nanos, u64)> = None;
        let mut delivered = 0u64;
        let ops = 600u64;
        for _ in 0..ops {
            let req = random_req(&mut rng);
            let frontier = arrival;
            engine.dispatch(req, arrival, synth_exec, &mut |c: IoCompletion<String>| {
                assert!(
                    c.completed <= frontier,
                    "round {round} (qd {qd}): event fired before the clock reached it"
                );
                let key = (c.completed, c.cid);
                assert!(
                    prev.is_none_or(|p| p < key),
                    "round {round} (qd {qd}): retirement broke (completed, cid) order"
                );
                prev = Some(key);
                delivered += 1;
            });
            arrival = advance(&mut rng, arrival);
        }
        engine.flush_into(&mut |c: IoCompletion<String>| {
            let key = (c.completed, c.cid);
            assert!(
                prev.is_none_or(|p| p < key),
                "round {round} (qd {qd}): flush broke (completed, cid) order"
            );
            prev = Some(key);
            delivered += 1;
        });
        assert_eq!(delivered, ops, "round {round}: lost or grew completions");
        assert!(engine.peak_in_flight() <= qd);
    }
}

/// Property 2: ops completing at the same instant retire in ascending
/// cid order, and two identical runs produce the identical stream.
#[test]
fn completion_instant_ties_break_by_cid_deterministically() {
    let run = |seed: u64| -> Vec<IoCompletion<String>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut engine: QueueEngine<String> = QueueEngine::new(32);
        let mut out = Vec::new();
        let mut arrival = Nanos::ZERO;
        for _ in 0..500 {
            let req = random_req(&mut rng);
            engine.dispatch(req, arrival, tie_exec, &mut |c| out.push(c));
            // Near-zero spacing keeps the window full so the 4µs grid
            // stacks many ops on each completion instant.
            arrival += Nanos::from_nanos(rng.gen_range(0..120));
        }
        engine.flush_into(&mut |c| out.push(c));
        out
    };
    let a = run(0x71E5);
    let b = run(0x71E5);
    assert_eq!(a, b, "identical runs must retire identically");
    let mut tied = 0usize;
    for w in a.windows(2) {
        if w[0].completed == w[1].completed {
            tied += 1;
            assert!(
                w[0].cid < w[1].cid,
                "tie at {} retired out of cid order",
                w[0].completed
            );
        }
    }
    assert!(
        tied > 50,
        "grid too coarse to force ties (got {tied}); property untested"
    );
}

/// Differential: the event engine's full completion stream — every
/// field of every completion — equals the polling oracle's, under
/// random depths, request mixes, and bursty arrivals.
#[test]
fn event_engine_matches_polling_oracle_completion_stream() {
    for seed in [0xD1FF_u64, 0xE8, 0xB57] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let qd = rng.gen_range(2..=48);
        let mut script: Vec<(IoRequest, Nanos)> = Vec::new();
        let mut arrival = Nanos::ZERO;
        for _ in 0..700 {
            script.push((random_req(&mut rng), arrival));
            arrival = advance(&mut rng, arrival);
        }

        let mut event: QueueEngine<String> = QueueEngine::new(qd);
        let mut ev_out = Vec::new();
        for &(req, at) in &script {
            event.dispatch(req, at, synth_exec, &mut |c| ev_out.push(c));
        }
        event.flush_into(&mut |c| ev_out.push(c));

        let mut polling: PollingEngine<String> = PollingEngine::new(qd);
        for &(req, at) in &script {
            polling.submit(req, at);
            polling.pump(synth_exec);
        }
        polling.flush();
        let mut po_out = Vec::new();
        while let Some(c) = polling.pop_completion() {
            po_out.push(c);
        }

        assert_eq!(ev_out, po_out, "seed {seed:#x} qd {qd}: streams diverged");
        assert_eq!(event.last_done(), polling.last_done());
        assert_eq!(event.peak_in_flight(), polling.peak_in_flight());
    }
}

/// Property 4: power fails at a random instant mid-window; both engines
/// must acknowledge exactly the same completion prefix and strand the
/// same unacked tail.
#[test]
fn cut_acks_the_same_prefix_as_the_polling_oracle() {
    let mut rng = SmallRng::seed_from_u64(0xC07);
    for round in 0..6 {
        let qd = rng.gen_range(2..=48);
        let ops = rng.gen_range(100..600);
        let mut script: Vec<(IoRequest, Nanos)> = Vec::new();
        let mut arrival = Nanos::ZERO;
        for _ in 0..ops {
            script.push((random_req(&mut rng), arrival));
            arrival = advance(&mut rng, arrival);
        }

        // Both hosts reap eagerly, like the runner does: the event core
        // through its dispatch sink, the oracle by draining its CQ
        // after every pump. An op either reaches the host before the
        // power fails or it doesn't; `cut` only rules on the ops still
        // inside the engine.
        let mut event: QueueEngine<String> = QueueEngine::new(qd);
        let mut ev_acked = Vec::new();
        for &(req, at) in &script {
            event.dispatch(req, at, synth_exec, &mut |c| ev_acked.push(c));
        }
        let mut polling: PollingEngine<String> = PollingEngine::new(qd);
        let mut po_acked = Vec::new();
        for &(req, at) in &script {
            polling.submit(req, at);
            polling.pump(synth_exec);
            while let Some(c) = polling.pop_completion() {
                po_acked.push(c);
            }
        }

        // Cut somewhere inside the span both engines have reached.
        let at = Nanos::from_nanos(rng.gen_range(0..=event.last_done().as_nanos()));
        let ev_cut = event.cut(at);
        let po_cut = polling.cut(at);

        // The event core's acked stream is what the sink already
        // delivered plus whatever the cut retired into its CQ; the
        // oracle's is its whole CQ. Both must be the identical
        // retirement-ordered prefix.
        let mut ev_total = ev_acked;
        while let Some(c) = event.pop_completion() {
            ev_total.push(c);
        }
        let mut po_total = po_acked;
        while let Some(c) = polling.pop_completion() {
            po_total.push(c);
        }
        assert_eq!(
            ev_total, po_total,
            "round {round} qd {qd}: acked prefixes diverged"
        );
        assert_eq!(
            ev_cut.unacked, po_cut.unacked,
            "round {round} qd {qd}: stranded tails diverged"
        );
        assert_eq!(
            ev_cut.unsubmitted, po_cut.unsubmitted,
            "round {round} qd {qd}: unsubmitted queues diverged"
        );
    }
}
