//! Property tests for the incrementally-maintained GC victim indexes:
//! after every operation the indexed state must agree with a naive
//! full-scan oracle derived from device state, and indexed victim
//! selection must reproduce the old linear scan's pick exactly
//! (including tie-break order).
//!
//! Seeded-loop style (the offline build vendors no proptest); each case
//! prints its seed on failure for replay. `BH_PROP_SEED` pins one seed.

use bh_conv::{ConvConfig, ConvError, ConvSsd, GcPolicy};
use bh_faults::FaultConfig;
use bh_flash::{FlashConfig, Geometry};
use bh_host::{BlockEmu, HostError, ReclaimPolicy};
use bh_metrics::Nanos;
use bh_zns::{ZnsConfig, ZnsDevice};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn seeds(base: u64, cases: u64) -> Vec<u64> {
    match std::env::var("BH_PROP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        Some(seed) => vec![seed],
        None => (0..cases).map(|c| base ^ c).collect(),
    }
}

fn small_geo() -> Geometry {
    Geometry {
        channels: 2,
        dies_per_channel: 1,
        planes_per_die: 2,
        blocks_per_plane: 24,
        pages_per_block: 8,
        page_bytes: 4096,
    }
}

fn conv_case(seed: u64, policy: GcPolicy, faults: bool) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut cfg = ConvConfig::new(FlashConfig::tlc(small_geo()), 0.12);
    cfg.gc_policy = policy;
    let mut ssd = ConvSsd::new(cfg).unwrap();
    if faults {
        ssd.install_faults(
            FaultConfig::new(seed)
                .with_program_fail_ppm(10_000)
                .with_erase_fail_ppm(20_000),
        );
    }
    let cap = ssd.capacity_pages();
    let mut t = Nanos::ZERO;
    for lba in 0..cap {
        t = ssd.write(lba, t).unwrap().done;
    }
    let ops = rng.gen_range(200..1200);
    for i in 0..ops {
        match rng.gen_range(0u32..10) {
            0..=6 => match ssd.write(rng.gen_range(0..cap), t) {
                Ok(w) => t = w.done,
                // Tiny geometries (plus fault-driven block retirement)
                // can hit legitimate end-of-life mid-sequence; every op
                // up to that point was verified.
                Err(ConvError::ReadOnly) => break,
                Err(e) => panic!("seed {seed:#x} op {i}: {e}"),
            },
            7 => {
                ssd.trim(rng.gen_range(0..cap)).unwrap();
            }
            8 => {
                ssd.maintenance(t, t + Nanos::from_millis(2)).unwrap();
            }
            _ => {
                let (done, _) = ssd.power_cycle(t).unwrap();
                t = done;
            }
        }
        if let Err(e) = ssd.verify_hotpath_invariants(t) {
            panic!("seed {seed:#x} policy {policy:?} faults {faults} op {i}: {e}");
        }
    }
}

#[test]
fn conv_index_matches_full_scan_oracle_greedy() {
    for seed in seeds(0x407_0100, 12) {
        conv_case(seed, GcPolicy::Greedy, false);
    }
}

#[test]
fn conv_index_matches_full_scan_oracle_cost_benefit() {
    for seed in seeds(0x407_0200, 12) {
        conv_case(seed, GcPolicy::CostBenefit, false);
    }
}

#[test]
fn conv_index_matches_full_scan_oracle_fifo() {
    for seed in seeds(0x407_0300, 12) {
        conv_case(seed, GcPolicy::Fifo, false);
    }
}

#[test]
fn conv_index_survives_fault_retirement() {
    for seed in seeds(0x407_0400, 12) {
        conv_case(seed, GcPolicy::Greedy, true);
    }
}

fn emu_case(seed: u64, policy: ReclaimPolicy, faults: bool) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let cfg = ZnsConfig::new(FlashConfig::tlc(small_geo()), 4).with_zone_limits(8);
    let mut dev = ZnsDevice::new(cfg).unwrap();
    if faults {
        dev.install_faults(
            FaultConfig::new(seed)
                .with_program_fail_ppm(10_000)
                .with_erase_fail_ppm(20_000),
        );
    }
    let mut emu = BlockEmu::new(dev, 2, policy);
    let cap = emu.capacity_pages();
    let mut t = Nanos::ZERO;
    let ops = rng.gen_range(200..1200);
    for i in 0..ops {
        match rng.gen_range(0u32..10) {
            0..=6 => match emu.write(rng.gen_range(0..cap), t) {
                Ok(done) => t = done,
                Err(HostError::NoFreeZone) => {
                    t = emu.maybe_reclaim(t).unwrap().1;
                }
                Err(e) => panic!("seed {seed:#x} op {i}: {e:?}"),
            },
            7 => {
                emu.trim(rng.gen_range(0..cap)).unwrap();
            }
            8 => {
                t = emu.maybe_reclaim(t).unwrap().1;
            }
            _ => {
                t = emu.power_cycle(t).unwrap().0;
            }
        }
        emu.verify_hotpath_invariants();
    }
}

#[test]
fn emu_index_matches_full_scan_oracle() {
    for policy in [
        ReclaimPolicy::Immediate,
        ReclaimPolicy::Watermark {
            low_zones: 2,
            high_zones: 4,
        },
    ] {
        for seed in seeds(0x407_0500, 8) {
            emu_case(seed, policy, false);
        }
    }
}

#[test]
fn emu_index_survives_fault_retirement() {
    for seed in seeds(0x407_0600, 8) {
        emu_case(seed, ReclaimPolicy::Immediate, true);
    }
}
