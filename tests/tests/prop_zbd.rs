//! Crash-safety property tests for the file-backed zoned emulator.
//!
//! bh-zbd's claim is stronger than the simulator's: `power_cycle` is a
//! genuine reopen-from-disk, so what survives a crash is exactly what
//! the append-ordered log holds. These tests drive random op/crash
//! schedules (the same LCG/crash-index harness as `prop_faults`) over
//! the full host stack on a zbd substrate and lock in two invariants
//! after *every* power cycle:
//!
//! 1. **Acked durability**: every write whose call returned reads back
//!    with the stamp it was acked with — under a noisy fault plan, so
//!    burned slots and read retries are in the schedule too.
//! 2. **Metadata honesty**: the live device's zone table (state, write
//!    pointer, resets) is byte-identical to what an independent cold
//!    [`ZbdDevice::open_file`] of the backing file reconstructs — the
//!    in-memory view never claims more than the durable log.
//!
//! A torn final record — the canonical crash artifact of any
//! append-ordered log — must truncate cleanly and leave the device
//! writable, never corrupt acked state.

use bh_faults::FaultConfig;
use bh_flash::{decode_oob, FlashConfig, Geometry};
use bh_host::{BlockEmu, ReclaimPolicy};
use bh_metrics::Nanos;
use bh_zbd::{ZbdConfig, ZbdDevice};
use bh_zns::backend::ZonedDevice;
use bh_zns::ZnsConfig;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

/// Base seed, overridable via `BH_FAULT_SEED` so CI can probe fresh
/// seeds (the workflow prints the value, so a red run replays exactly).
fn base_seed(default: u64) -> u64 {
    std::env::var("BH_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Fault mix matching `prop_faults::noisy`: frequent enough that short
/// runs hit burned slots and retries, mild enough to stay writable.
fn noisy(seed: u64) -> FaultConfig {
    FaultConfig::new(seed)
        .with_program_fail_ppm(15_000)
        .with_erase_fail_ppm(10_000)
        .with_read_retry_ppm(20_000)
}

/// A process-unique backing file, removed on drop even when the test
/// panics.
struct TempFile(PathBuf);

impl TempFile {
    fn new(tag: &str) -> Self {
        static N: AtomicU32 = AtomicU32::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        TempFile(
            std::env::temp_dir().join(format!("bh-prop-zbd-{}-{tag}-{n}.zbd", std::process::id())),
        )
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn zns_config() -> ZnsConfig {
    ZnsConfig::new(FlashConfig::tlc(Geometry::small_test()), 4).with_zone_limits(8)
}

fn zbd_emu(path: &Path, faults: Option<FaultConfig>) -> BlockEmu<ZbdDevice> {
    let dev = ZbdDevice::create_file(ZbdConfig::mirror(&zns_config()), path).unwrap();
    let mut e = BlockEmu::new(dev, 3, ReclaimPolicy::Immediate);
    if let Some(f) = faults {
        e.install_faults(f);
    }
    e
}

/// The metadata-honesty half of the property: a cold reopen of the
/// backing file must reconstruct exactly the zone table the live
/// (just-power-cycled) device reports.
fn assert_durable_metadata_matches(emu: &BlockEmu<ZbdDevice>, path: &Path) {
    let cold = ZbdDevice::open_file(path).expect("cold reopen of backing file");
    let live = emu.device();
    assert_eq!(cold.num_zones(), live.num_zones());
    for (c, l) in cold.zone_report().iter().zip(live.zone_report()) {
        assert_eq!(
            (c.state(), c.write_pointer(), c.resets()),
            (l.state(), l.write_pointer(), l.resets()),
            "zone {} durable metadata diverges from the live device",
            l.id().0
        );
    }
}

/// Drives `crash_at` random acked writes under a noisy fault plan,
/// power cycles, and checks both invariants.
fn crash_preserves_acked_state(crash_at: u64, seed: u64) {
    let file = TempFile::new("crash");
    let mut emu = zbd_emu(&file.0, Some(noisy(base_seed(0x2BD))));
    let cap = emu.capacity_pages();
    let mut written = std::collections::BTreeSet::new();
    let mut t = Nanos::ZERO;
    let mut x = seed | 1;
    for _ in 0..crash_at {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let lba = x % cap;
        t = emu.write(lba, t).unwrap();
        written.insert(lba);
    }
    let before: Vec<(u64, u64)> = written
        .iter()
        .map(|&lba| {
            let (stamp, done) = emu.read(lba, t).unwrap();
            t = done;
            (lba, stamp)
        })
        .collect();
    let (done, _scanned) = emu.power_cycle(t).unwrap();
    for &(lba, stamp) in &before {
        let (s, _) = emu.read(lba, done).unwrap();
        assert_eq!(
            s, stamp,
            "lba {lba} lost or changed across power loss at op {crash_at}"
        );
        let (_seq, tagged) = decode_oob(s);
        assert_eq!(tagged, lba, "recovered stamp belongs to a different lba");
    }
    assert_durable_metadata_matches(&emu, &file.0);
}

/// A spread of crash indices — zero work, first op, mid-zone, zone
/// boundaries, several times the logical capacity (forcing reclaim
/// under faults before the loss).
fn crash_points(cap: u64) -> Vec<u64> {
    vec![0, 1, 2, 7, 33, cap / 2, cap, cap + 13, 2 * cap, 3 * cap]
}

#[test]
fn zbd_crash_at_sampled_indices_preserves_acked_writes() {
    let probe = TempFile::new("probe");
    let cap = zbd_emu(&probe.0, None).capacity_pages();
    drop(probe);
    for k in crash_points(cap) {
        crash_preserves_acked_state(k, base_seed(0x5EED) + k);
    }
}

/// The exhaustive sweep — every crash index over a full device
/// lifetime — runs nightly (`cargo test -- --include-ignored`).
#[test]
#[ignore = "exhaustive sweep; run via --include-ignored"]
fn zbd_survives_crash_at_every_index() {
    let probe = TempFile::new("probe");
    let cap = zbd_emu(&probe.0, None).capacity_pages();
    drop(probe);
    for k in 0..=2 * cap {
        crash_preserves_acked_state(k, base_seed(0x5EED) + k);
    }
}

/// One long random schedule with *repeated* power losses: the metadata
/// invariant must hold after every cycle, and writes must keep
/// succeeding on the recovered state (the log keeps appending past
/// every recovery truncation).
#[test]
fn zbd_repeated_crashes_keep_log_and_metadata_consistent() {
    let file = TempFile::new("multi");
    let mut emu = zbd_emu(&file.0, Some(noisy(base_seed(0x2BD1))));
    let cap = emu.capacity_pages();
    let mut t = Nanos::ZERO;
    let mut x = base_seed(0xCAFE) | 1;
    for round in 0..5u64 {
        let mut acked = Vec::new();
        for _ in 0..cap / 2 + 11 * round {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let lba = x % cap;
            t = emu.write(lba, t).unwrap();
            acked.push(lba);
        }
        let snapshot: Vec<(u64, u64)> = acked
            .iter()
            .map(|&lba| {
                let (stamp, done) = emu.read(lba, t).unwrap();
                t = done;
                (lba, stamp)
            })
            .collect();
        let (done, _) = emu.power_cycle(t).unwrap();
        t = done;
        for &(lba, stamp) in &snapshot {
            let (s, done) = emu.read(lba, t).unwrap();
            t = done;
            assert_eq!(s, stamp, "round {round}: lba {lba} diverged after recovery");
        }
        assert_durable_metadata_matches(&emu, &file.0);
    }
}

/// A torn final record (the crash landed mid-`write(2)`) truncates
/// cleanly on reopen: the valid prefix survives byte-for-byte and the
/// device keeps appending.
#[test]
fn zbd_torn_tail_truncates_to_acked_prefix() {
    use std::io::Write;
    let file = TempFile::new("torn");
    let cfg = ZbdConfig::mirror(&zns_config());
    let mut dev = ZbdDevice::create_file(cfg, &file.0).unwrap();
    let mut t = Nanos::ZERO;
    for i in 0..10u64 {
        let (_, done) = dev.append(bh_zns::ZoneId(0), 0xA000 + i, t).unwrap();
        t = done;
    }
    drop(dev);
    // Tear the log: half a record of garbage at the end.
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&file.0)
        .unwrap();
    f.write_all(&[0xEE; 11]).unwrap();
    drop(f);
    let mut dev = ZbdDevice::open_file(&file.0).unwrap();
    let z = dev.zone(bh_zns::ZoneId(0)).unwrap();
    assert_eq!(z.write_pointer(), 10, "acked prefix must survive the tear");
    for i in 0..10u64 {
        let (stamp, _) = dev.read(bh_zns::ZoneId(0), i, t).unwrap();
        assert_eq!(stamp, 0xA000 + i);
    }
    // The log continues past the truncation.
    let (off, _) = dev.append(bh_zns::ZoneId(0), 0xB000, t).unwrap();
    assert_eq!(off, 10);
}
