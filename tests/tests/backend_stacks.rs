//! The whole host-side stack runs unmodified on either zoned substrate.
//!
//! The backend seam is one trait (`bh_zns::backend::ZonedDevice`) with
//! two implementations: the in-memory simulator and bh-zbd's durable
//! emulator. These tests instantiate each layer that sits on that seam
//! — `BlockEmu` behind the typed `BlockInterface`, the bh-kv LSM store,
//! and the bh-cache segment store — over a `ZbdDevice` and exercise its
//! normal workload, proving the genericization is real (no layer
//! secretly depends on the simulator's concrete type) and that
//! `bh_core::Backend` can drive the substrate choice at run time.

use bh_core::{Backend, BlockInterface, WriteReq};
use bh_flash::{FlashConfig, Geometry};
use bh_host::{BlockEmu, ReclaimPolicy};
use bh_kv::{Db, DbConfig, StorageBackend, ZnsBackend};
use bh_metrics::Nanos;
use bh_zbd::{ZbdConfig, ZbdDevice};
use bh_zns::{ZnsConfig, ZnsDevice};

fn zns_config() -> ZnsConfig {
    ZnsConfig::new(FlashConfig::tlc(Geometry::small_test()), 4).with_zone_limits(8)
}

/// Memory-backed zbd device: same durable log format and state
/// machine, no file on disk — ideal for substrate-matrix tests.
fn zbd_device() -> ZbdDevice {
    ZbdDevice::new(ZbdConfig::mirror(&zns_config())).unwrap()
}

/// One `BlockInterface` workload, applied identically to a stack built
/// on each substrate the `Backend` enum can name.
fn exercise_block_interface(dev: &mut dyn BlockInterface) {
    let cap = dev.capacity_pages();
    let mut t = Nanos::ZERO;
    for lba in 0..cap {
        t = dev.write(WriteReq::new(lba), t).unwrap();
    }
    let mut x = 7u64;
    for i in 0..2 * cap {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let lba = x % cap;
        if x.is_multiple_of(3) {
            t = dev.read(lba, t).unwrap();
        } else {
            t = dev.write(WriteReq::new(lba), t).unwrap();
        }
        if i.is_multiple_of(64) {
            t = dev.maintenance(t).unwrap();
        }
    }
    assert!(dev.write_amplification() >= 1.0);
    assert!(dev.flash_stats().host_programs >= 3 * cap / 2);
}

#[test]
fn block_interface_runs_on_every_backend() {
    for backend in [Backend::Sim, Backend::Zbd] {
        let mut dev: Box<dyn BlockInterface> = match backend {
            Backend::Sim => Box::new(BlockEmu::new(
                ZnsDevice::new(zns_config()).unwrap(),
                3,
                ReclaimPolicy::Immediate,
            )),
            Backend::Zbd => Box::new(BlockEmu::new(zbd_device(), 3, ReclaimPolicy::Immediate)),
        };
        assert_eq!(
            dev.label(),
            match backend {
                Backend::Sim => "zns+blockemu",
                Backend::Zbd => "zbd+blockemu",
            }
        );
        exercise_block_interface(dev.as_mut());
    }
}

#[test]
fn kv_store_runs_on_zbd() {
    let cfg = DbConfig {
        memtable_bytes: 32 << 10,
        l0_files: 4,
        level_base_bytes: 256 << 10,
        level_multiplier: 8,
        sst_bytes: 64 << 10,
        block_bytes: 4096,
        sync_every: 16,
    };
    let mut db = Db::new(ZnsBackend::new(zbd_device()), cfg).unwrap();
    let mut t = Nanos::ZERO;
    for i in 0..400u64 {
        t = db
            .put(format!("user{i:06}").into_bytes(), vec![i as u8; 200], t)
            .unwrap();
    }
    // Overwrites force flushes and compaction onto zbd zones.
    for i in 0..400u64 {
        t = db
            .put(
                format!("user{:06}", i % 97).into_bytes(),
                vec![!(i as u8); 200],
                t,
            )
            .unwrap();
    }
    let (hit, _) = db.get(b"user000042", t).unwrap();
    assert!(
        hit.is_some(),
        "key written before overwrites must be readable"
    );
    assert!(db.backend().device_write_amplification() >= 1.0);
}

#[test]
fn cache_segment_store_runs_on_zbd() {
    use bh_cache::SegmentStore;
    let mut store = bh_cache::ZnsSegmentStore::new(zbd_device());
    assert!(!store.requires_coalescing());
    let mut t = Nanos::ZERO;
    for i in 0..store.pages_per_segment() {
        t = store.write_page(0, i, t).unwrap();
    }
    t = store.read_page(0, 3, t).unwrap();
    t = store.erase_segment(0, t).unwrap();
    store.write_page(0, 0, t).unwrap();
}
