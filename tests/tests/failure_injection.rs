//! Failure injection across the stacks: wear-out, offline zones,
//! read-only zones, and crashes.

use bh_conv::{ConvConfig, ConvError, ConvSsd};
use bh_faults::FaultConfig;
use bh_flash::{CellKind, FlashConfig, Geometry};
use bh_host::{BlockEmu, HintMode, ReclaimPolicy, ZonedLfs};
use bh_kv::{ConvBackend, Db, DbConfig};
use bh_metrics::Nanos;
use bh_trace::{replay, Tracer, ZoneStateTag};
use bh_zns::{ZnsConfig, ZnsDevice, ZnsError, ZoneId, ZoneState};

fn worn_flash(endurance: u32) -> FlashConfig {
    FlashConfig {
        geometry: Geometry::small_test(),
        cell: CellKind::Tlc,
        endurance_override: Some(endurance),
    }
}

/// A conventional device driven past its endurance fails into read-only
/// mode — and stays readable.
#[test]
fn conv_wears_out_gracefully() {
    let mut ssd = ConvSsd::new(ConvConfig::new(worn_flash(8), 0.15)).unwrap();
    let cap = ssd.capacity_pages();
    let mut t = Nanos::ZERO;
    let mut last_written = 0;
    'outer: for round in 0..400u64 {
        for lba in 0..cap {
            match ssd.write((lba + round) % cap, t) {
                Ok(w) => {
                    t = w.done;
                    last_written = (lba + round) % cap;
                }
                Err(ConvError::ReadOnly) => break 'outer,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
    }
    assert!(ssd.is_read_only(), "device should have worn out");
    assert!(ssd.device().bad_blocks() > 0);
    // Reads still work after end-of-life.
    let (stamp, _) = ssd.read(last_written, t).unwrap();
    assert!(stamp > 0);
    // Writes keep failing deterministically.
    assert_eq!(ssd.write(0, t).unwrap_err(), ConvError::ReadOnly);
}

/// Wearing a traced device to death must not corrupt the event stream:
/// GC episode pairing stays consistent through block retirements and
/// the transition to read-only mode.
#[test]
fn conv_wearout_keeps_trace_consistent() {
    let mut ssd = ConvSsd::new(ConvConfig::new(worn_flash(8), 0.15)).unwrap();
    let tracer = Tracer::ring(1 << 20);
    ssd.set_tracer(tracer.clone());
    let cap = ssd.capacity_pages();
    let mut t = Nanos::ZERO;
    'outer: for round in 0..400u64 {
        for lba in 0..cap {
            match ssd.write((lba + round) % cap, t) {
                Ok(w) => t = w.done,
                Err(ConvError::ReadOnly) => break 'outer,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
    }
    assert!(ssd.is_read_only(), "device should have worn out");
    let episodes =
        replay::gc_episodes(&tracer.events()).expect("wear-out must not break begin/end pairing");
    assert!(!episodes.is_empty(), "wearing out involves GC");
    // Episodes that retired their victim are still well-formed spans.
    for ep in episodes.iter().filter(|e| e.end.is_some()) {
        assert!(ep.end.unwrap() >= ep.begin);
    }
}

/// A ZNS zone whose blocks all retire goes offline; its neighbours are
/// unaffected.
#[test]
fn zns_zone_goes_offline_without_collateral() {
    let cfg = ZnsConfig::new(worn_flash(3), 4).with_zone_limits(8);
    let mut dev = ZnsDevice::new(cfg).unwrap();
    let mut t = Nanos::ZERO;
    // Hammer zone 0 with write/reset cycles until it dies.
    loop {
        match dev.write(ZoneId(0), 0, 1, t) {
            Ok(done) => t = done,
            Err(ZnsError::ZoneOffline(_)) => break,
            Err(e) => panic!("unexpected {e}"),
        }
        match dev.reset(ZoneId(0), t) {
            Ok(done) => t = done,
            Err(ZnsError::ZoneOffline(_)) => break,
            Err(e) => panic!("unexpected {e}"),
        }
    }
    assert_eq!(dev.zone(ZoneId(0)).unwrap().state(), ZoneState::Offline);
    // Zone 1 still works.
    t = dev.write(ZoneId(1), 0, 42, t).unwrap();
    let (stamp, _) = dev.read(ZoneId(1), 0, t).unwrap();
    assert_eq!(stamp, 42);
}

/// The death of a zone is visible in the trace: the recorded
/// transitions replay to the offline state the device reports.
#[test]
fn zns_offline_transition_is_traced() {
    let cfg = ZnsConfig::new(worn_flash(3), 4).with_zone_limits(8);
    let mut dev = ZnsDevice::new(cfg).unwrap();
    let tracer = Tracer::ring(1 << 20);
    dev.set_tracer(tracer.clone());
    let mut t = Nanos::ZERO;
    loop {
        match dev.write(ZoneId(0), 0, 1, t) {
            Ok(done) => t = done,
            Err(ZnsError::ZoneOffline(_)) => break,
            Err(e) => panic!("unexpected {e}"),
        }
        match dev.reset(ZoneId(0), t) {
            Ok(done) => t = done,
            Err(ZnsError::ZoneOffline(_)) => break,
            Err(e) => panic!("unexpected {e}"),
        }
    }
    assert_eq!(dev.zone(ZoneId(0)).unwrap().state(), ZoneState::Offline);
    let replayed = replay::zone_states(&tracer.events());
    assert_eq!(replayed.get(&0), Some(&ZoneStateTag::Offline));
}

/// A read-only zone keeps serving reads while rejecting writes; the
/// block emulation above it keeps running by writing elsewhere.
#[test]
fn read_only_zone_keeps_data_available() {
    let cfg = ZnsConfig::new(FlashConfig::tlc(Geometry::small_test()), 4).with_zone_limits(8);
    let mut dev = ZnsDevice::new(cfg).unwrap();
    let t = dev.write(ZoneId(2), 0, 77, Nanos::ZERO).unwrap();
    dev.inject_read_only(ZoneId(2)).unwrap();
    assert_eq!(
        dev.write(ZoneId(2), 1, 0, t),
        Err(ZnsError::ZoneReadOnly(ZoneId(2)))
    );
    let (stamp, _) = dev.read(ZoneId(2), 0, t).unwrap();
    assert_eq!(stamp, 77);
}

/// Crashing the KV store repeatedly at arbitrary points never corrupts
/// previously flushed data.
#[test]
fn kv_survives_repeated_crashes() {
    let geo = Geometry {
        channels: 2,
        dies_per_channel: 1,
        planes_per_die: 2,
        blocks_per_plane: 48,
        pages_per_block: 32,
        page_bytes: 4096,
    };
    let ssd = ConvSsd::new(ConvConfig::new(FlashConfig::tlc(geo), 0.15)).unwrap();
    let mut db = Db::new(
        ConvBackend::new(ssd),
        DbConfig {
            memtable_bytes: 4 << 10,
            sync_every: 8,
            ..DbConfig::default()
        },
    )
    .unwrap();
    let mut t = Nanos::ZERO;
    for round in 0..6u64 {
        for i in 0..60u64 {
            let k = format!("stable{i:03}").into_bytes();
            let v = format!("round-{round}").into_bytes();
            t = db.put(k, v, t).unwrap();
        }
        // Flush makes this round durable, then crash mid-next-round.
        t = db.flush(t).unwrap();
        for i in 0..10u64 {
            t = db
                .put(format!("tail{i}").into_bytes(), vec![round as u8], t)
                .unwrap();
        }
        db.crash_and_recover(t).unwrap();
        // Flushed keys always reflect the completed round.
        let (v, done) = db.get(b"stable000", t).unwrap();
        assert_eq!(v, Some(format!("round-{round}").into_bytes()));
        t = done;
    }
}

/// The block emulation keeps its data intact while zones wear out under
/// it, until space genuinely runs out.
#[test]
fn blockemu_tolerates_wearing_device() {
    let cfg = ZnsConfig::new(worn_flash(40), 4).with_zone_limits(8);
    let mut emu = BlockEmu::new(ZnsDevice::new(cfg).unwrap(), 2, ReclaimPolicy::Immediate);
    let cap = emu.capacity_pages();
    let mut t = Nanos::ZERO;
    for lba in 0..cap {
        t = emu.write(lba, t).unwrap();
    }
    let mut x = 3u64;
    let mut writes = 0u64;
    loop {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        match emu.write(x % cap, t) {
            Ok(done) => {
                t = done;
                writes += 1;
                if writes > 20_000 {
                    break; // Endurance 40 outlasted the test budget: fine.
                }
            }
            Err(_) => break, // Wear-out: acceptable terminal state.
        }
        if writes.is_multiple_of(64) {
            t = emu.maybe_reclaim(t).unwrap().1;
        }
    }
    // Whatever happened, reads of recently written data must still work.
    let (stamp, _) = emu.read(x % cap, t).unwrap();
    assert!(stamp > 0);
}

/// Mid-life grown bad blocks: erase faults during GC retire blocks long
/// before wear-out, and the FTL absorbs them — no data loss, no
/// premature read-only transition, GC trace still balanced.
#[test]
fn conv_grows_bad_blocks_mid_life_without_losing_data() {
    let mut ssd = ConvSsd::new(ConvConfig::new(
        FlashConfig::tlc(Geometry::small_test()),
        0.15,
    ))
    .unwrap();
    let tracer = Tracer::ring(1 << 20);
    ssd.set_tracer(tracer.clone());
    // Small device, small spare pool: the rate is tuned so a handful of
    // blocks retire without exhausting the overprovisioning headroom.
    ssd.install_faults(FaultConfig::new(0xBAD).with_erase_fail_ppm(8_000));
    let cap = ssd.capacity_pages();
    let mut t = Nanos::ZERO;
    for lba in 0..cap {
        t = ssd.write(lba, t).unwrap().done;
    }
    // Overwrites force GC; every GC erase rolls the fault dice.
    let mut x = 7u64;
    for _ in 0..5 * cap {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        t = ssd.write(x % cap, t).unwrap().done;
    }
    assert!(
        ssd.device().bad_blocks() > 0,
        "erase faults should have retired blocks mid-life"
    );
    assert!(
        !ssd.is_read_only(),
        "a few grown bad blocks must not end the device's life"
    );
    for lba in 0..cap {
        let (stamp, done) = ssd.read(lba, t).unwrap();
        assert!(stamp > 0, "lba {lba} lost to a grown bad block");
        t = done;
    }
    let episodes = replay::gc_episodes(&tracer.events())
        .expect("grown bad blocks must not break GC begin/end pairing");
    assert!(!episodes.is_empty(), "overwrite pressure involves GC");
}

/// A cleaning pass that hits program failures while relocating
/// survivors: the LFS re-drives the burned appends and no file page is
/// lost. Faults go on the zoned device *before* the file system wraps
/// it — the LFS itself has no fault hooks, by design.
#[test]
fn lfs_cleaning_pass_survives_program_failures() {
    let cfg = ZnsConfig::new(FlashConfig::tlc(Geometry::small_test()), 4).with_zone_limits(8);
    let mut dev = ZnsDevice::new(cfg).unwrap();
    let tracer = Tracer::ring(1 << 20);
    dev.set_tracer(tracer.clone());
    dev.install_faults(FaultConfig::new(0xF5).with_program_fail_ppm(30_000));
    let mut lfs = ZonedLfs::new(dev, HintMode::None);
    let stable = lfs.create("stable", 1).unwrap();
    let churn = lfs.create("churn", 1).unwrap();
    let pages = 48u64;
    let t = Nanos::ZERO;
    // Interleave a stable file with a churning one, then overwrite only
    // the churning file: victim zones end up mixed live/garbage, so
    // cleaning must relocate survivors through the faulty append path.
    for i in 0..pages {
        lfs.write(stable, i, 100 + i, t).unwrap();
        lfs.write(churn, i, 7000 + i, t).unwrap();
    }
    let rounds = 8u64;
    for round in 0..rounds {
        for i in 0..pages {
            lfs.write(churn, i, round * 100 + i, t).unwrap();
        }
    }
    let t = lfs.clean(t, 5).unwrap();
    assert!(
        lfs.stats().cleaned > 0,
        "cleaning should have relocated live pages"
    );
    for i in 0..pages {
        let (stamp, _) = lfs.read(stable, i, t).unwrap();
        assert_eq!(stamp, (100 + i) & 0xFFFF, "stable page {i} corrupted");
        let (stamp, _) = lfs.read(churn, i, t).unwrap();
        assert_eq!(
            stamp,
            ((rounds - 1) * 100 + i) & 0xFFFF,
            "churn page {i} corrupted"
        );
    }
    // The zone-state transitions recorded through burns, finishes, and
    // resets replay to exactly what the device reports.
    let replayed = replay::zone_states(&tracer.events());
    assert!(!replayed.is_empty(), "cleaning must leave zone transitions");
    assert!(
        !replayed.values().any(|s| *s == ZoneStateTag::Offline),
        "program failures alone must never take a zone offline"
    );
}

/// Power loss between filling a zone and finishing it: per the ZNS spec
/// zone state and write pointers are durable, open zones come back
/// Closed, and the interrupted finish can simply be re-driven.
#[test]
fn power_loss_during_zone_finish_recovers_cleanly() {
    let cfg = ZnsConfig::new(FlashConfig::tlc(Geometry::small_test()), 4).with_zone_limits(8);
    let mut dev = ZnsDevice::new(cfg).unwrap();
    let tracer = Tracer::ring(1 << 20);
    dev.set_tracer(tracer.clone());
    let mut t = Nanos::ZERO;
    t = dev.write(ZoneId(0), 0, 11, t).unwrap();
    t = dev.write(ZoneId(1), 0, 22, t).unwrap();
    // Lights out just before the host issues the finish.
    t = dev.power_cycle(t);
    assert_eq!(dev.zone(ZoneId(0)).unwrap().state(), ZoneState::Closed);
    assert_eq!(dev.zone(ZoneId(1)).unwrap().state(), ZoneState::Closed);
    // Restart: the host re-drives the finish against the Closed zone.
    dev.finish(ZoneId(0)).unwrap();
    assert_eq!(dev.zone(ZoneId(0)).unwrap().state(), ZoneState::Full);
    // Data below the write pointer survived the loss.
    let (stamp, _) = dev.read(ZoneId(0), 0, t).unwrap();
    assert_eq!(stamp, 11);
    let (stamp, _) = dev.read(ZoneId(1), 0, t).unwrap();
    assert_eq!(stamp, 22);
    // The trace shows the same story: a balanced transition history
    // ending Full for the finished zone, Closed for the other.
    let replayed = replay::zone_states(&tracer.events());
    assert_eq!(replayed.get(&0), Some(&ZoneStateTag::Full));
    assert_eq!(replayed.get(&1), Some(&ZoneStateTag::Closed));
}
