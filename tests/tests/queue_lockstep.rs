//! QD=1 lockstep: the queue engine, driven directly at depth 1 with the
//! closed-loop arrival rule, must reproduce the legacy serial dispatch
//! loop *bit for bit* on both stacks — same per-op issue and completion
//! instants, same device end state. This is the contract that lets the
//! runner keep the serial loop for queue depth ≤ 1 and the engine for
//! everything deeper without the two paths drifting apart.

use bh_conv::{ConvConfig, ConvSsd};
use bh_core::{IoError, IoRequest, Pacing, QueueEngine, RunConfig, Runner, StackAdmin, WriteReq};
use bh_flash::{FlashConfig, Geometry};
use bh_host::{BlockEmu, ReclaimPolicy};
use bh_metrics::Nanos;
use bh_workloads::{Op, OpMix, OpSource, OpStream};
use bh_zns::{ZnsConfig, ZnsDevice};

const SEED: u64 = 0x10C5;
const OPS: u64 = 2_000;

fn conv_stack() -> Box<dyn StackAdmin> {
    let dev = ConvSsd::new(ConvConfig::new(
        FlashConfig::tlc(Geometry::small_test()),
        0.15,
    ))
    .unwrap();
    Box::new(dev)
}

fn zns_stack() -> Box<dyn StackAdmin> {
    let cfg = ZnsConfig::new(FlashConfig::tlc(Geometry::small_test()), 4).with_zone_limits(8);
    let dev = ZnsDevice::new(cfg).unwrap();
    Box::new(BlockEmu::new(dev, 2, ReclaimPolicy::Immediate))
}

/// One op served the legacy way: directly against the device at its
/// arrival instant. Returns the completion instant (arrival for trims
/// and failed reads, exactly as the serial runner treats them).
fn serial_step(dev: &mut dyn StackAdmin, op: Op, hint: u32, arrival: Nanos) -> Nanos {
    match op {
        Op::Read(lba) => dev.read(lba, arrival).unwrap_or(arrival),
        Op::Write(lba) => dev.write(WriteReq::hinted(lba, hint), arrival).unwrap(),
        Op::Trim(lba) => {
            dev.trim(lba).unwrap();
            arrival
        }
    }
}

fn exec(dev: &mut dyn StackAdmin, req: &IoRequest, now: Nanos) -> (Nanos, Result<(), IoError>) {
    match *req {
        IoRequest::Read { lba } => match dev.read(lba, now) {
            Ok(done) => (done, Ok(())),
            Err(e) => (now, Err(e)),
        },
        IoRequest::Write { lba, hint } => match dev.write(WriteReq { lba, hint }, now) {
            Ok(done) => (done, Ok(())),
            Err(e) => (now, Err(e)),
        },
        IoRequest::Trim { lba } => match dev.trim(lba) {
            Ok(()) => (now, Ok(())),
            Err(e) => (now, Err(e)),
        },
        IoRequest::Maintenance => match dev.maintenance(now) {
            Ok(done) => (done, Ok(())),
            Err(e) => (now, Err(e)),
        },
    }
}

/// Two identical devices, one op stream: device A takes the legacy
/// serial closed loop, device B takes the engine at depth 1 with
/// `slot_free_at` pacing. Every per-op instant must match.
fn assert_lockstep(mk: fn() -> Box<dyn StackAdmin>) {
    let mut a = mk();
    let mut b = mk();
    let start_a = Runner::fill(a.as_mut(), Nanos::ZERO).unwrap();
    let start_b = Runner::fill(b.as_mut(), Nanos::ZERO).unwrap();
    assert_eq!(start_a, start_b, "fills must agree before the run starts");

    let cap = a.capacity_pages();
    let mut stream_a = OpStream::zipfian(cap, OpMix::read_heavy(), SEED);
    let mut stream_b = OpStream::zipfian(cap, OpMix::read_heavy(), SEED);

    // Serial side: record (arrival, completion) per op.
    let mut serial: Vec<(Nanos, Nanos)> = Vec::with_capacity(OPS as usize);
    let mut arrival = start_a;
    for _ in 0..OPS {
        let (op, hint) = stream_a.next_hinted();
        let done = serial_step(a.as_mut(), op, hint, arrival);
        serial.push((arrival, done));
        arrival = done.max(arrival); // closed loop
    }

    // Engine side: same stream through a depth-1 window.
    let mut engine: QueueEngine<IoError> = QueueEngine::new(1);
    let mut arrival = start_b;
    for _ in 0..OPS {
        let (op, hint) = stream_b.next_hinted();
        let req = match op {
            Op::Read(lba) => IoRequest::Read { lba },
            Op::Write(lba) => IoRequest::Write {
                lba,
                hint: Some(hint),
            },
            Op::Trim(lba) => IoRequest::Trim { lba },
        };
        engine.submit(req, arrival);
        engine.pump(|req, t| exec(b.as_mut(), req, t));
        arrival = start_b.max(engine.slot_free_at());
    }
    engine.flush();

    // Per-op identity: at depth 1 the engine retires in submission
    // order, so completion k is op k.
    let mut k = 0;
    while let Some(c) = engine.pop_completion() {
        let (s_arrival, s_done) = serial[k];
        assert_eq!(c.cid, k as u64, "depth-1 retirement is submission order");
        assert_eq!(c.submitted, s_arrival, "op {k}: arrival instants differ");
        assert_eq!(
            c.issued, s_arrival,
            "op {k}: depth-1 closed loop never queues"
        );
        assert_eq!(c.completed, s_done, "op {k}: completion instants differ");
        k += 1;
    }
    assert_eq!(k as u64, OPS, "every submission completed exactly once");

    // Device end state is identical too.
    assert_eq!(
        a.write_amplification().to_bits(),
        b.write_amplification().to_bits(),
        "write amplification diverged"
    );
    assert_eq!(a.queue_depth(arrival), b.queue_depth(arrival));
}

#[test]
fn engine_depth_one_matches_serial_on_conventional() {
    assert_lockstep(conv_stack);
}

#[test]
fn engine_depth_one_matches_serial_on_zns_emu() {
    assert_lockstep(zns_stack);
}

/// The runner's own dispatch routing: queue depth 0 and 1 are the same
/// serial path, so their results are identical field for field.
#[test]
fn runner_depth_zero_and_one_are_the_same_path() {
    let run_at = |qd: usize| {
        let mut dev = conv_stack();
        let t = Runner::fill(dev.as_mut(), Nanos::ZERO).unwrap();
        let mut stream = OpStream::zipfian(dev.capacity_pages(), OpMix::read_heavy(), SEED);
        let runner = Runner::new(
            RunConfig::new(1_500)
                .with_pacing(Pacing::Closed)
                .with_maintenance_every(64)
                .with_queue_depth(qd),
        );
        runner.run(dev.as_mut(), &mut stream, t).unwrap()
    };
    let r0 = run_at(0);
    let r1 = run_at(1);
    assert_eq!(r0.reads.summary(), r1.reads.summary());
    assert_eq!(r0.writes.summary(), r1.writes.summary());
    assert_eq!(r0.elapsed, r1.elapsed);
    assert_eq!(r0.errors, r1.errors);
    assert_eq!(r0.device_wa.to_bits(), r1.device_wa.to_bits());
    assert_eq!(r0.peak_in_flight, r1.peak_in_flight);
}

/// The queued runner path is deterministic at every depth: running the
/// same config twice gives identical results.
#[test]
fn queued_runner_is_deterministic_at_depth() {
    for qd in [4usize, 16] {
        let run_once = || {
            let mut dev = zns_stack();
            let t = Runner::fill(dev.as_mut(), Nanos::ZERO).unwrap();
            let mut stream = OpStream::zipfian(dev.capacity_pages(), OpMix::read_heavy(), SEED);
            let runner = Runner::new(
                RunConfig::new(1_500)
                    .with_pacing(Pacing::Closed)
                    .with_maintenance_every(64)
                    .with_queue_depth(qd),
            );
            runner.run(dev.as_mut(), &mut stream, t).unwrap()
        };
        let r1 = run_once();
        let r2 = run_once();
        assert_eq!(r1.reads.summary(), r2.reads.summary(), "qd {qd}");
        assert_eq!(r1.writes.summary(), r2.writes.summary(), "qd {qd}");
        assert_eq!(r1.elapsed, r2.elapsed, "qd {qd}");
        assert_eq!(r1.device_wa.to_bits(), r2.device_wa.to_bits(), "qd {qd}");
        assert_eq!(r1.peak_in_flight, r2.peak_in_flight, "qd {qd}");
        assert_eq!(r1.peak_in_flight, qd, "closed loop fills the window");
    }
}
