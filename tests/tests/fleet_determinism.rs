//! The fleet engine's headline guarantee, checked end to end: a fleet
//! run's archived report is a pure function of its config — the worker
//! thread count, which only changes how shards interleave on the OS,
//! must never leak into a single byte of the output.

use bh_core::Pacing;
use bh_faults::FaultConfig;
use bh_flash::Geometry;
use bh_fleet::{run_fleet, FleetConfig, Placement, StackKind};
use bh_host::ReclaimPolicy;
use bh_metrics::Nanos;

fn cfg(devices: usize, seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::mixed(devices, Geometry::small_test(), devices as u32 * 3, seed);
    cfg.ops_per_shard = 800;
    cfg.sample_every = 200;
    cfg
}

#[test]
fn fleet_report_identical_for_1_and_8_jobs() {
    let cfg = cfg(6, 0xD57);
    let sequential = run_fleet(&cfg, 1).unwrap().report.to_json();
    let parallel = run_fleet(&cfg, 8).unwrap().report.to_json();
    assert_eq!(
        sequential, parallel,
        "thread count leaked into the fleet report"
    );
}

#[test]
fn fleet_traces_identical_for_1_and_4_jobs() {
    let mut cfg = cfg(4, 0xD58);
    cfg.trace = true;
    let a = run_fleet(&cfg, 1).unwrap();
    let b = run_fleet(&cfg, 4).unwrap();
    assert_eq!(
        bh_trace::to_chrome_trace_sharded(&a.traces),
        bh_trace::to_chrome_trace_sharded(&b.traces),
        "thread count leaked into the exported trace"
    );
}

#[test]
fn fleet_report_depends_on_seed() {
    let a = run_fleet(&cfg(4, 1), 2).unwrap().report.to_json();
    let b = run_fleet(&cfg(4, 2), 2).unwrap().report.to_json();
    assert_ne!(a, b, "different seeds must drive different fleets");
}

#[test]
fn fleet_report_independent_of_placement_iteration_order() {
    // Same fleet, three placement policies: all must cover every tenant
    // (shard tenant counts sum to the population) and stay deterministic.
    for placement in [Placement::Hash, Placement::RoundRobin, Placement::LoadAware] {
        let mut c = cfg(4, 0xD59);
        c.placement = placement;
        let r1 = run_fleet(&c, 1).unwrap().report;
        let r3 = run_fleet(&c, 3).unwrap().report;
        assert_eq!(r1.to_json(), r3.to_json());
        let total: u32 = r1.shards.iter().map(|s| s.tenants).sum();
        assert_eq!(total, c.tenants, "placement {placement:?} lost tenants");
    }
}

#[test]
fn bursty_pacing_and_idle_reclaim_stay_deterministic() {
    // The expt_fleet configuration in miniature: bursty arrivals,
    // idle-window reclaim on the ZNS shards.
    let mut c = cfg(4, 0xD5A);
    c.pacing = Pacing::Bursty {
        burst_ops: 16,
        interarrival: Nanos::from_millis(5),
        idle: Nanos::from_millis(20),
    };
    for spec in &mut c.devices {
        if let StackKind::ZnsEmu { reclaim, .. } = &mut spec.stack {
            *reclaim = ReclaimPolicy::IdleOnly {
                min_idle: Nanos::from_millis(8),
            };
        }
    }
    let a = run_fleet(&c, 1).unwrap().report.to_json();
    let b = run_fleet(&c, 4).unwrap().report.to_json();
    assert_eq!(a, b);
}

#[test]
fn quiet_fault_template_matches_fleet_without_fault_layer() {
    // Differential: a template with every rate at zero must produce the
    // same bytes as not wiring the fault layer in at all. Guards against
    // the fault path perturbing timing or RNG state while silent.
    let without = run_fleet(&cfg(4, 0xD5B), 2).unwrap().report.to_json();
    let mut c = cfg(4, 0xD5B);
    c.faults = Some(FaultConfig::new(0));
    let quiet = run_fleet(&c, 2).unwrap().report.to_json();
    assert_eq!(
        quiet, without,
        "a quiet fault plan changed the fleet report"
    );
}

#[test]
fn faulty_fleet_report_identical_for_1_and_8_jobs() {
    // The determinism headline must survive the fault layer: per-shard
    // fault seeds are derived from the fleet seed, never from scheduling.
    let mut c = cfg(6, 0xD5C);
    c.faults = Some(
        FaultConfig::new(0)
            .with_program_fail_ppm(3_000)
            .with_read_retry_ppm(25_000),
    );
    let sequential = run_fleet(&c, 1).unwrap().report.to_json();
    let parallel = run_fleet(&c, 8).unwrap().report.to_json();
    assert_eq!(
        sequential, parallel,
        "thread count leaked into the faulty fleet report"
    );
    // And the faults must actually be felt: same config minus the
    // template diverges.
    let clean = run_fleet(&cfg(6, 0xD5C), 2).unwrap().report.to_json();
    assert_ne!(sequential, clean, "fault template had no effect");
}
