//! Property tests for the ZNS device: the zone state machine never
//! enters an illegal configuration and the namespace-wide accounting
//! (active/open counts) always matches the per-zone states, under
//! arbitrary command sequences.

use bh_flash::{FlashConfig, Geometry};
use bh_metrics::Nanos;
use bh_zns::{ZnsConfig, ZnsDevice, ZoneId, ZoneState};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum ZnsCmd {
    Write(u8),
    Append(u8),
    Read(u8, u8),
    Open(u8),
    Close(u8),
    Finish(u8),
    Reset(u8),
}

fn cmd() -> impl Strategy<Value = ZnsCmd> {
    prop_oneof![
        4 => any::<u8>().prop_map(ZnsCmd::Write),
        3 => any::<u8>().prop_map(ZnsCmd::Append),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(z, o)| ZnsCmd::Read(z, o)),
        1 => any::<u8>().prop_map(ZnsCmd::Open),
        1 => any::<u8>().prop_map(ZnsCmd::Close),
        1 => any::<u8>().prop_map(ZnsCmd::Finish),
        2 => any::<u8>().prop_map(ZnsCmd::Reset),
    ]
}

fn device(mar: u32, mor: u32) -> ZnsDevice {
    let mut cfg = ZnsConfig::new(FlashConfig::tlc(Geometry::small_test()), 4);
    cfg.max_active_zones = mar;
    cfg.max_open_zones = mor;
    ZnsDevice::new(cfg).unwrap()
}

/// Recomputes the active/open counts from zone states.
fn recount(dev: &ZnsDevice) -> (u32, u32) {
    let mut active = 0;
    let mut open = 0;
    for z in dev.zones() {
        if z.state().is_active() {
            active += 1;
        }
        if z.state().is_open() {
            open += 1;
        }
    }
    (active, open)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever command sequence arrives (most of it invalid), the
    /// device never violates: wp <= capacity, limit accounting matches
    /// the states, limits are respected, and data below the write
    /// pointer reads back.
    #[test]
    fn zone_state_machine_holds_invariants(
        cmds in proptest::collection::vec(cmd(), 1..300),
        mar in 2u32..8,
    ) {
        let mor = mar.max(2) - 1;
        let mut dev = device(mar, mor);
        let zones = dev.num_zones();
        let mut t = Nanos::ZERO;
        // Model: per zone, the stamps written since last reset.
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); zones as usize];
        let mut stamp = 0u64;
        for c in cmds {
            match c {
                ZnsCmd::Write(z) => {
                    let z = z as u32 % zones;
                    let wp = dev.zone(ZoneId(z)).unwrap().write_pointer();
                    stamp += 1;
                    if let Ok(done) = dev.write(ZoneId(z), wp, stamp, t) {
                        model[z as usize].push(stamp);
                        t = done;
                    }
                }
                ZnsCmd::Append(z) => {
                    let z = z as u32 % zones;
                    stamp += 1;
                    if let Ok((off, done)) = dev.append(ZoneId(z), stamp, t) {
                        prop_assert_eq!(off as usize, model[z as usize].len());
                        model[z as usize].push(stamp);
                        t = done;
                    }
                }
                ZnsCmd::Read(z, o) => {
                    let z = z as u32 % zones;
                    let written = model[z as usize].len() as u64;
                    match dev.read(ZoneId(z), o as u64, t) {
                        Ok((got, done)) => {
                            prop_assert!((o as u64) < written, "read past model wp succeeded");
                            prop_assert_eq!(got, model[z as usize][o as usize]);
                            t = done;
                        }
                        Err(_) => {
                            // Either beyond wp or zone offline; both fine.
                        }
                    }
                }
                ZnsCmd::Open(z) => {
                    let _ = dev.open(ZoneId(z as u32 % zones));
                }
                ZnsCmd::Close(z) => {
                    let _ = dev.close(ZoneId(z as u32 % zones));
                }
                ZnsCmd::Finish(z) => {
                    let _ = dev.finish(ZoneId(z as u32 % zones));
                }
                ZnsCmd::Reset(z) => {
                    let z = z as u32 % zones;
                    if let Ok(done) = dev.reset(ZoneId(z), t) {
                        model[z as usize].clear();
                        t = done;
                    }
                }
            }
            // Invariants after every command.
            let (active, open) = recount(&dev);
            prop_assert_eq!(active, dev.active_zones(), "active accounting drifted");
            prop_assert_eq!(open, dev.open_zones(), "open accounting drifted");
            prop_assert!(active <= mar, "MAR violated: {} > {}", active, mar);
            prop_assert!(open <= mor, "MOR violated: {} > {}", open, mor);
            for z in dev.zones() {
                prop_assert!(z.write_pointer() <= z.capacity());
                if z.state() == ZoneState::Empty {
                    prop_assert_eq!(z.write_pointer(), 0);
                }
            }
        }
        // Final sweep: every modeled byte reads back.
        for z in 0..zones {
            for (o, &expect) in model[z as usize].iter().enumerate() {
                if dev.zone(ZoneId(z)).unwrap().state() == ZoneState::Offline {
                    continue;
                }
                let (got, done) = dev.read(ZoneId(z), o as u64, t).unwrap();
                prop_assert_eq!(got, expect);
                t = done;
            }
        }
    }

    /// Flash-level conservation under the ZNS model: total programs
    /// equal the sum of bytes the model holds plus what resets destroyed.
    #[test]
    fn zns_program_accounting_is_conserved(
        writes in proptest::collection::vec((any::<u8>(), any::<bool>()), 1..200)
    ) {
        let mut dev = device(8, 8);
        let zones = dev.num_zones();
        let mut t = Nanos::ZERO;
        let mut programs = 0u64;
        for (z, reset) in writes {
            let z = z as u32 % zones;
            if reset {
                if dev.reset(ZoneId(z), t).is_ok() {
                    // Destroys content; programs counter unaffected.
                }
            } else if let Ok((_, done)) = dev.append(ZoneId(z), 1, t) {
                programs += 1;
                t = done;
            }
        }
        prop_assert_eq!(dev.flash_stats().host_programs, programs);
        // The zoned interface never amplifies writes by itself.
        prop_assert!((dev.flash_stats().write_amplification() - 1.0).abs() < 1e-12);
    }
}
