//! Property tests for the ZNS device: the zone state machine never
//! enters an illegal configuration and the namespace-wide accounting
//! (active/open counts) always matches the per-zone states, under
//! arbitrary command sequences.
//!
//! Implemented as seeded-loop property tests (the offline build vendors
//! no proptest); each case prints its seed on failure for replay.

use bh_flash::{FlashConfig, Geometry};
use bh_metrics::Nanos;
use bh_zns::{ZnsConfig, ZnsDevice, ZoneId, ZoneState};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone, Copy)]
enum ZnsCmd {
    Write(u8),
    Append(u8),
    Read(u8, u8),
    Open(u8),
    Close(u8),
    Finish(u8),
    Reset(u8),
}

fn gen_cmd(rng: &mut SmallRng) -> ZnsCmd {
    let z = rng.gen_range(0u32..256) as u8;
    // Weights mirror the original proptest strategy: 4/3/2/1/1/1/2.
    match rng.gen_range(0u32..14) {
        0..=3 => ZnsCmd::Write(z),
        4..=6 => ZnsCmd::Append(z),
        7..=8 => ZnsCmd::Read(z, rng.gen_range(0u32..256) as u8),
        9 => ZnsCmd::Open(z),
        10 => ZnsCmd::Close(z),
        11 => ZnsCmd::Finish(z),
        _ => ZnsCmd::Reset(z),
    }
}

fn device(mar: u32, mor: u32) -> ZnsDevice {
    let cfg = ZnsConfig::new(FlashConfig::tlc(Geometry::small_test()), 4)
        .with_active_zones(mar)
        .with_open_zones(mor);
    ZnsDevice::new(cfg).unwrap()
}

/// Recomputes the active/open counts from zone states.
fn recount(dev: &ZnsDevice) -> (u32, u32) {
    let mut active = 0;
    let mut open = 0;
    for z in dev.zones() {
        if z.state().is_active() {
            active += 1;
        }
        if z.state().is_open() {
            open += 1;
        }
    }
    (active, open)
}

/// Whatever command sequence arrives (most of it invalid), the device
/// never violates: wp <= capacity, limit accounting matches the states,
/// limits are respected, and data below the write pointer reads back.
#[test]
fn zone_state_machine_holds_invariants() {
    for case in 0u64..64 {
        let mut rng = SmallRng::seed_from_u64(0x25A0_0000 ^ case);
        let n_cmds = rng.gen_range(1usize..300);
        let mar = rng.gen_range(2u32..8);
        let mor = mar.max(2) - 1;
        let mut dev = device(mar, mor);
        let zones = dev.num_zones();
        let mut t = Nanos::ZERO;
        // Model: per zone, the stamps written since last reset.
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); zones as usize];
        let mut stamp = 0u64;
        for _ in 0..n_cmds {
            match gen_cmd(&mut rng) {
                ZnsCmd::Write(z) => {
                    let z = z as u32 % zones;
                    let wp = dev.zone(ZoneId(z)).unwrap().write_pointer();
                    stamp += 1;
                    if let Ok(done) = dev.write(ZoneId(z), wp, stamp, t) {
                        model[z as usize].push(stamp);
                        t = done;
                    }
                }
                ZnsCmd::Append(z) => {
                    let z = z as u32 % zones;
                    stamp += 1;
                    if let Ok((off, done)) = dev.append(ZoneId(z), stamp, t) {
                        assert_eq!(off as usize, model[z as usize].len(), "case {case}");
                        model[z as usize].push(stamp);
                        t = done;
                    }
                }
                ZnsCmd::Read(z, o) => {
                    let z = z as u32 % zones;
                    let written = model[z as usize].len() as u64;
                    match dev.read(ZoneId(z), o as u64, t) {
                        Ok((got, done)) => {
                            assert!(
                                (o as u64) < written,
                                "case {case}: read past model wp succeeded"
                            );
                            assert_eq!(got, model[z as usize][o as usize], "case {case}");
                            t = done;
                        }
                        Err(_) => {
                            // Either beyond wp or zone offline; both fine.
                        }
                    }
                }
                ZnsCmd::Open(z) => {
                    let _ = dev.open(ZoneId(z as u32 % zones));
                }
                ZnsCmd::Close(z) => {
                    let _ = dev.close(ZoneId(z as u32 % zones));
                }
                ZnsCmd::Finish(z) => {
                    let _ = dev.finish(ZoneId(z as u32 % zones));
                }
                ZnsCmd::Reset(z) => {
                    let z = z as u32 % zones;
                    if let Ok(done) = dev.reset(ZoneId(z), t) {
                        model[z as usize].clear();
                        t = done;
                    }
                }
            }
            // Invariants after every command.
            let (active, open) = recount(&dev);
            assert_eq!(
                active,
                dev.active_zones(),
                "case {case}: active accounting drifted"
            );
            assert_eq!(
                open,
                dev.open_zones(),
                "case {case}: open accounting drifted"
            );
            assert!(active <= mar, "case {case}: MAR violated: {active} > {mar}");
            assert!(open <= mor, "case {case}: MOR violated: {open} > {mor}");
            for z in dev.zones() {
                assert!(z.write_pointer() <= z.capacity(), "case {case}");
                if z.state() == ZoneState::Empty {
                    assert_eq!(z.write_pointer(), 0, "case {case}");
                }
            }
        }
        // Final sweep: every modeled byte reads back.
        for z in 0..zones {
            for (o, &expect) in model[z as usize].iter().enumerate() {
                if dev.zone(ZoneId(z)).unwrap().state() == ZoneState::Offline {
                    continue;
                }
                let (got, done) = dev.read(ZoneId(z), o as u64, t).unwrap();
                assert_eq!(got, expect, "case {case}");
                t = done;
            }
        }
    }
}

/// Flash-level conservation under the ZNS model: total programs equal
/// the appends that succeeded, and the zoned interface never amplifies
/// writes by itself.
#[test]
fn zns_program_accounting_is_conserved() {
    for case in 0u64..64 {
        let mut rng = SmallRng::seed_from_u64(0x25A0_1000 ^ case);
        let n_writes = rng.gen_range(1usize..200);
        let mut dev = device(8, 8);
        let zones = dev.num_zones();
        let mut t = Nanos::ZERO;
        let mut programs = 0u64;
        for _ in 0..n_writes {
            let z = rng.gen_range(0u32..256) % zones;
            let reset = rng.gen_bool(0.5);
            if reset {
                // Destroys content; programs counter unaffected.
                let _ = dev.reset(ZoneId(z), t);
            } else if let Ok((_, done)) = dev.append(ZoneId(z), 1, t) {
                programs += 1;
                t = done;
            }
        }
        assert_eq!(dev.flash_stats().host_programs, programs, "case {case}");
        // The zoned interface never amplifies writes by itself.
        assert!(
            (dev.flash_stats().write_amplification() - 1.0).abs() < 1e-12,
            "case {case}"
        );
    }
}
