//! Property tests for the flash substrate: the §2.1 physical constraints
//! hold under arbitrary operation sequences, and page-state accounting
//! is conserved.

use bh_flash::{
    BlockId, CellKind, FlashConfig, FlashDevice, FlashError, Geometry, OpOrigin, Ppa,
};
use bh_metrics::Nanos;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum FlashOp {
    Program(u8),
    ProgramAt(u8, u8),
    Read(u8, u8),
    Invalidate(u8, u8),
    Erase(u8),
    Copy(u8, u8, u8),
}

fn flash_op() -> impl Strategy<Value = FlashOp> {
    prop_oneof![
        4 => any::<u8>().prop_map(FlashOp::Program),
        1 => (any::<u8>(), any::<u8>()).prop_map(|(b, p)| FlashOp::ProgramAt(b, p)),
        3 => (any::<u8>(), any::<u8>()).prop_map(|(b, p)| FlashOp::Read(b, p)),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(b, p)| FlashOp::Invalidate(b, p)),
        2 => any::<u8>().prop_map(FlashOp::Erase),
        1 => (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(b, p, d)| FlashOp::Copy(b, p, d)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A model of per-block page states stays in lockstep with the
    /// device through arbitrary (mostly invalid) operation sequences.
    #[test]
    fn flash_matches_page_state_model(ops in proptest::collection::vec(flash_op(), 1..400)) {
        let geo = Geometry::small_test();
        let mut dev = FlashDevice::new(FlashConfig::tlc(geo)).unwrap();
        let blocks = geo.total_blocks();
        let ppb = geo.pages_per_block;
        // Model: per block, Vec<Option<stamp>> for programmed pages (None
        // = programmed-but-invalidated), plus cursor.
        let mut model: Vec<Vec<Option<u64>>> = vec![Vec::new(); blocks as usize];
        let mut stamp = 0u64;
        let t = Nanos::ZERO;
        for op in ops {
            match op {
                FlashOp::Program(b) => {
                    let b = b as u32 % blocks;
                    stamp += 1;
                    match dev.program_next(BlockId(b), stamp, t, OpOrigin::Host) {
                        Ok((page, _)) => {
                            prop_assert_eq!(page as usize, model[b as usize].len());
                            model[b as usize].push(Some(stamp));
                        }
                        Err(FlashError::BlockFull(_)) => {
                            prop_assert_eq!(model[b as usize].len() as u32, ppb);
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                FlashOp::ProgramAt(b, p) => {
                    let b = b as u32 % blocks;
                    let p = p as u32 % ppb;
                    stamp += 1;
                    let cursor = model[b as usize].len() as u32;
                    match dev.program_at(Ppa::new(BlockId(b), p), stamp, t, OpOrigin::Host) {
                        Ok(_) => {
                            prop_assert_eq!(p, cursor, "out-of-order program accepted");
                            model[b as usize].push(Some(stamp));
                        }
                        Err(FlashError::NonSequentialProgram { expected, .. }) => {
                            prop_assert_eq!(expected, cursor);
                            prop_assert_ne!(p, cursor);
                        }
                        Err(FlashError::BlockFull(_)) => {
                            prop_assert_eq!(cursor, ppb);
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                FlashOp::Read(b, p) => {
                    let b = b as u32 % blocks;
                    let p = p as u32 % ppb;
                    let expect = model[b as usize].get(p as usize);
                    match dev.read(Ppa::new(BlockId(b), p), t, OpOrigin::Host) {
                        Ok((got, _)) => {
                            prop_assert_eq!(Some(&got), expect, "read state mismatch");
                        }
                        Err(FlashError::ReadUnwritten(_)) => {
                            prop_assert!(expect.is_none(), "unwritten error on written page");
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                FlashOp::Invalidate(b, p) => {
                    let b = b as u32 % blocks;
                    let p = p as u32 % ppb;
                    // Invalidating a free page panics by contract; only
                    // exercise the legal transition.
                    if (p as usize) < model[b as usize].len() {
                        dev.invalidate(Ppa::new(BlockId(b), p)).unwrap();
                        model[b as usize][p as usize] = None;
                    }
                }
                FlashOp::Erase(b) => {
                    let b = b as u32 % blocks;
                    let out = dev.erase(BlockId(b), t).unwrap();
                    prop_assert!(!out.retired, "default endurance exhausted in-test");
                    model[b as usize].clear();
                }
                FlashOp::Copy(b, p, d) => {
                    let b = b as u32 % blocks;
                    let p = p as u32 % ppb;
                    let d = d as u32 % blocks;
                    let src_live = model[b as usize]
                        .get(p as usize)
                        .copied()
                        .flatten();
                    let dst_full = model[d as usize].len() as u32 == ppb;
                    match dev.copy_page(Ppa::new(BlockId(b), p), BlockId(d), t) {
                        Ok((dst_page, got, _)) => {
                            prop_assert_eq!(Some(got), src_live);
                            prop_assert_eq!(dst_page as usize, model[d as usize].len());
                            model[d as usize].push(Some(got));
                        }
                        Err(FlashError::ReadUnwritten(_)) => {
                            prop_assert!(src_live.is_none());
                        }
                        Err(FlashError::BlockFull(_)) => {
                            prop_assert!(dst_full);
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
            }
            // Conservation: per-block counts agree with the model.
            for b in 0..blocks {
                let blk = dev.block(BlockId(b)).unwrap();
                let m = &model[b as usize];
                prop_assert_eq!(blk.cursor() as usize, m.len());
                prop_assert_eq!(
                    blk.valid_pages() as usize,
                    m.iter().filter(|s| s.is_some()).count()
                );
            }
        }
    }

    /// Completion instants are monotone per plane under random issue
    /// orders, and endurance retirement is permanent.
    #[test]
    fn wear_retirement_is_permanent(cycles in 1u32..12) {
        let mut dev = FlashDevice::new(FlashConfig {
            geometry: Geometry::small_test(),
            cell: CellKind::Tlc,
            endurance_override: Some(cycles),
        })
        .unwrap();
        let t = Nanos::ZERO;
        let mut retired = false;
        for _ in 0..cycles + 3 {
            match dev.erase(BlockId(0), t) {
                Ok(out) => {
                    prop_assert!(!retired, "operation succeeded after retirement");
                    retired = out.retired;
                }
                Err(FlashError::BadBlock(_)) => {
                    prop_assert!(retired, "BadBlock before retirement");
                }
                Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
            }
        }
        prop_assert!(retired);
        prop_assert_eq!(dev.bad_blocks(), 1);
    }
}
