//! Property tests for the flash substrate: the §2.1 physical constraints
//! hold under arbitrary operation sequences, and page-state accounting
//! is conserved.
//!
//! Implemented as seeded-loop property tests (the offline build vendors
//! no proptest): each case derives a fresh deterministic RNG, generates a
//! random operation sequence, and checks the device against a reference
//! model after every step. Failures print the case seed for replay.

use bh_flash::{BlockId, CellKind, FlashConfig, FlashDevice, FlashError, Geometry, OpOrigin, Ppa};
use bh_metrics::Nanos;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone, Copy)]
enum FlashOp {
    Program(u8),
    ProgramAt(u8, u8),
    Read(u8, u8),
    Invalidate(u8, u8),
    Erase(u8),
    Copy(u8, u8, u8),
}

fn gen_op(rng: &mut SmallRng) -> FlashOp {
    // Weights mirror the original proptest strategy: 4/1/3/2/2/1.
    match rng.gen_range(0u32..13) {
        0..=3 => FlashOp::Program(rng.gen_range(0u32..256) as u8),
        4 => FlashOp::ProgramAt(
            rng.gen_range(0u32..256) as u8,
            rng.gen_range(0u32..256) as u8,
        ),
        5..=7 => FlashOp::Read(
            rng.gen_range(0u32..256) as u8,
            rng.gen_range(0u32..256) as u8,
        ),
        8..=9 => FlashOp::Invalidate(
            rng.gen_range(0u32..256) as u8,
            rng.gen_range(0u32..256) as u8,
        ),
        10..=11 => FlashOp::Erase(rng.gen_range(0u32..256) as u8),
        _ => FlashOp::Copy(
            rng.gen_range(0u32..256) as u8,
            rng.gen_range(0u32..256) as u8,
            rng.gen_range(0u32..256) as u8,
        ),
    }
}

/// A model of per-block page states stays in lockstep with the device
/// through arbitrary (mostly invalid) operation sequences.
#[test]
fn flash_matches_page_state_model() {
    for case in 0u64..64 {
        let mut rng = SmallRng::seed_from_u64(0xF1A5_0000 ^ case);
        let n_ops = rng.gen_range(1usize..400);
        let geo = Geometry::small_test();
        let mut dev = FlashDevice::new(FlashConfig::tlc(geo)).unwrap();
        let blocks = geo.total_blocks();
        let ppb = geo.pages_per_block;
        // Model: per block, Vec<Option<stamp>> for programmed pages (None
        // = programmed-but-invalidated), plus cursor.
        let mut model: Vec<Vec<Option<u64>>> = vec![Vec::new(); blocks as usize];
        let mut stamp = 0u64;
        let t = Nanos::ZERO;
        for _ in 0..n_ops {
            match gen_op(&mut rng) {
                FlashOp::Program(b) => {
                    let b = b as u32 % blocks;
                    stamp += 1;
                    match dev.program_next(BlockId(b), stamp, t, OpOrigin::Host) {
                        Ok((page, _)) => {
                            assert_eq!(page as usize, model[b as usize].len(), "case {case}");
                            model[b as usize].push(Some(stamp));
                        }
                        Err(FlashError::BlockFull(_)) => {
                            assert_eq!(model[b as usize].len() as u32, ppb, "case {case}");
                        }
                        Err(e) => panic!("case {case}: {e}"),
                    }
                }
                FlashOp::ProgramAt(b, p) => {
                    let b = b as u32 % blocks;
                    let p = p as u32 % ppb;
                    stamp += 1;
                    let cursor = model[b as usize].len() as u32;
                    match dev.program_at(Ppa::new(BlockId(b), p), stamp, t, OpOrigin::Host) {
                        Ok(_) => {
                            assert_eq!(p, cursor, "case {case}: out-of-order program accepted");
                            model[b as usize].push(Some(stamp));
                        }
                        Err(FlashError::NonSequentialProgram { expected, .. }) => {
                            assert_eq!(expected, cursor, "case {case}");
                            assert_ne!(p, cursor, "case {case}");
                        }
                        Err(FlashError::BlockFull(_)) => {
                            assert_eq!(cursor, ppb, "case {case}");
                        }
                        Err(e) => panic!("case {case}: {e}"),
                    }
                }
                FlashOp::Read(b, p) => {
                    let b = b as u32 % blocks;
                    let p = p as u32 % ppb;
                    let expect = model[b as usize].get(p as usize);
                    match dev.read(Ppa::new(BlockId(b), p), t, OpOrigin::Host) {
                        Ok((got, _)) => {
                            assert_eq!(Some(&got), expect, "case {case}: read state mismatch");
                        }
                        Err(FlashError::ReadUnwritten(_)) => {
                            assert!(
                                expect.is_none(),
                                "case {case}: unwritten error on written page"
                            );
                        }
                        Err(e) => panic!("case {case}: {e}"),
                    }
                }
                FlashOp::Invalidate(b, p) => {
                    let b = b as u32 % blocks;
                    let p = p as u32 % ppb;
                    // Invalidating a free page panics by contract; only
                    // exercise the legal transition.
                    if (p as usize) < model[b as usize].len() {
                        dev.invalidate(Ppa::new(BlockId(b), p)).unwrap();
                        model[b as usize][p as usize] = None;
                    }
                }
                FlashOp::Erase(b) => {
                    let b = b as u32 % blocks;
                    let out = dev.erase(BlockId(b), t).unwrap();
                    assert!(!out.retired, "case {case}: default endurance exhausted");
                    model[b as usize].clear();
                }
                FlashOp::Copy(b, p, d) => {
                    let b = b as u32 % blocks;
                    let p = p as u32 % ppb;
                    let d = d as u32 % blocks;
                    let src_live = model[b as usize].get(p as usize).copied().flatten();
                    let dst_full = model[d as usize].len() as u32 == ppb;
                    match dev.copy_page(Ppa::new(BlockId(b), p), BlockId(d), t) {
                        Ok((dst_page, got, _)) => {
                            assert_eq!(Some(got), src_live, "case {case}");
                            assert_eq!(dst_page as usize, model[d as usize].len(), "case {case}");
                            model[d as usize].push(Some(got));
                        }
                        Err(FlashError::ReadUnwritten(_)) => {
                            assert!(src_live.is_none(), "case {case}");
                        }
                        Err(FlashError::BlockFull(_)) => {
                            assert!(dst_full, "case {case}");
                        }
                        Err(e) => panic!("case {case}: {e}"),
                    }
                }
            }
            // Conservation: per-block counts agree with the model.
            for b in 0..blocks {
                let blk = dev.block(BlockId(b)).unwrap();
                let m = &model[b as usize];
                assert_eq!(blk.cursor() as usize, m.len(), "case {case}");
                assert_eq!(
                    blk.valid_pages() as usize,
                    m.iter().filter(|s| s.is_some()).count(),
                    "case {case}"
                );
            }
        }
    }
}

/// Endurance retirement is permanent: after the rated cycle count a
/// block reports `BadBlock` forever.
#[test]
fn wear_retirement_is_permanent() {
    for case in 0u64..11 {
        let cycles = 1 + case as u32; // 1..=11 rated cycles
        let mut dev = FlashDevice::new(FlashConfig {
            geometry: Geometry::small_test(),
            cell: CellKind::Tlc,
            endurance_override: Some(cycles),
        })
        .unwrap();
        let t = Nanos::ZERO;
        let mut retired = false;
        for _ in 0..cycles + 3 {
            match dev.erase(BlockId(0), t) {
                Ok(out) => {
                    assert!(
                        !retired,
                        "case {case}: operation succeeded after retirement"
                    );
                    retired = out.retired;
                }
                Err(FlashError::BadBlock(_)) => {
                    assert!(retired, "case {case}: BadBlock before retirement");
                }
                Err(e) => panic!("case {case}: {e}"),
            }
        }
        assert!(retired, "case {case}");
        assert_eq!(dev.bad_blocks(), 1, "case {case}");
    }
}
