//! Cross-crate integration tests: full stacks, driven through the public
//! APIs, with the invariants the experiments rely on.

use bh_conv::{ConvConfig, ConvSsd};
use bh_core::{BlockInterface, Pacing, RunConfig, Runner, WriteReq};
use bh_flash::{FlashConfig, Geometry};
use bh_host::{BlockEmu, ObjectStore, PlacementPolicy, ReclaimPolicy, ZoneFs};
use bh_metrics::Nanos;
use bh_workloads::{ObjectEvent, ObjectStream, ObjectStreamConfig, OpMix, OpStream, Trace};
use bh_zns::{ZnsConfig, ZnsDevice};

fn conv() -> ConvSsd {
    ConvSsd::new(ConvConfig::new(
        FlashConfig::tlc(Geometry::small_test()),
        0.15,
    ))
    .unwrap()
}

fn zns(bpz: u32) -> ZnsDevice {
    let cfg = ZnsConfig::new(FlashConfig::tlc(Geometry::small_test()), bpz).with_zone_limits(8);
    ZnsDevice::new(cfg).unwrap()
}

/// The core runner drives both stacks through the same trait and the
/// same recorded trace, and both serve it without loss.
#[test]
fn runner_drives_both_stacks_identically() {
    let mut stream = OpStream::uniform(96, OpMix::read_heavy(), 42);
    let trace = Trace::record("mixed", stream.take_ops(600));

    let run = |dev: &mut dyn BlockInterface| -> (u64, u64) {
        let t = Runner::fill(dev, Nanos::ZERO).unwrap();
        let mut served = 0;
        let mut errors = 0;
        let mut now = t;
        for op in trace.replay() {
            let r = match op {
                bh_workloads::Op::Read(lba) => dev.read(lba % dev.capacity_pages(), now),
                bh_workloads::Op::Write(lba) => {
                    dev.write(WriteReq::new(lba % dev.capacity_pages()), now)
                }
                bh_workloads::Op::Trim(_) => continue,
            };
            match r {
                Ok(done) => {
                    served += 1;
                    now = done;
                }
                Err(_) => errors += 1,
            }
        }
        (served, errors)
    };

    let mut c = conv();
    let (served_c, errors_c) = run(&mut c);
    let mut e = BlockEmu::new(zns(4), 2, ReclaimPolicy::Immediate);
    let (served_e, errors_e) = run(&mut e);
    assert_eq!(errors_c, 0);
    assert_eq!(errors_e, 0);
    assert_eq!(served_c, served_e);
}

/// The open-loop runner produces sane histograms on a full device.
#[test]
fn open_loop_run_has_complete_accounting() {
    let mut dev = conv();
    let t = Runner::fill(&mut dev, Nanos::ZERO).unwrap();
    let mut stream = OpStream::uniform(dev.capacity_pages(), OpMix::read_heavy(), 7);
    let runner = Runner::new(
        RunConfig::new(1200)
            .with_pacing(Pacing::Open {
                interarrival: Nanos::from_micros(400),
            })
            .with_maintenance_every(128),
    );
    let r = runner.run(&mut dev, &mut stream, t).unwrap();
    assert_eq!(r.reads.count() + r.writes.count(), 1200);
    assert_eq!(r.errors, 0);
    assert!(r.reads.quantile(0.5) >= Nanos::from_micros(70));
    assert!(r.device_wa >= 1.0);
}

/// zonefs over a device that also serves another component: files map
/// one-to-one onto zones and survive a full write/truncate cycle.
#[test]
fn zonefs_full_lifecycle() {
    let mut fs = ZoneFs::new(zns(4));
    let mut t = Nanos::ZERO;
    // Fill every file completely.
    for f in 0..fs.num_files() {
        let max = fs.max_size_pages(f).unwrap();
        for i in 0..max {
            t = fs.append(f, (f as u64) << 32 | i, t).unwrap().1;
        }
        assert_eq!(fs.size_pages(f).unwrap(), max);
    }
    // Everything reads back.
    for f in 0..fs.num_files() {
        let (stamp, done) = fs.read(f, 3, t).unwrap();
        assert_eq!(stamp, (f as u64) << 32 | 3);
        t = done;
    }
    // Truncate half, rewrite, verify.
    for f in (0..fs.num_files()).step_by(2) {
        t = fs.truncate(f, t).unwrap();
        assert_eq!(fs.size_pages(f).unwrap(), 0);
        t = fs.append(f, 999, t).unwrap().1;
        let (stamp, done) = fs.read(f, 0, t).unwrap();
        assert_eq!(stamp, 999);
        t = done;
    }
    // Odd files untouched.
    let (stamp, _) = fs.read(1, 0, t).unwrap();
    assert_eq!(stamp, 1u64 << 32);
}

/// The object store survives a full generated workload (arrivals,
/// expiries, reclaim) under every placement policy, with all live
/// objects readable at the end.
#[test]
fn object_store_serves_generated_stream_under_all_policies() {
    let mut gen = ObjectStream::new(
        ObjectStreamConfig {
            owners: 3,
            arrival_gap_ns: 300_000,
            base_lifetime_ns: 20_000_000,
            lifetime_noise: 0.2,
            pages: (1, 3),
        },
        99,
    );
    let events = gen.events(800);
    for policy in [
        PlacementPolicy::Scatter { streams: 2 },
        PlacementPolicy::Temporal,
        PlacementPolicy::ByOwner { streams: 4 },
        PlacementPolicy::ByExpiry {
            bucket: Nanos::from_millis(20),
        },
    ] {
        let mut store = ObjectStore::new(zns(2), policy);
        let mut live = Vec::new();
        for e in &events {
            match *e {
                ObjectEvent::Put {
                    at_ns,
                    id,
                    pages,
                    owner,
                    expiry_estimate_ns,
                } => {
                    store
                        .put(
                            id,
                            pages,
                            owner,
                            Nanos::from_nanos(expiry_estimate_ns),
                            Nanos::from_nanos(at_ns),
                        )
                        .unwrap_or_else(|e| panic!("{policy:?}: put failed: {e}"));
                    live.push((id, pages));
                }
                ObjectEvent::Delete { at_ns, id } => {
                    store.delete(id, Nanos::from_nanos(at_ns)).unwrap();
                    live.retain(|&(l, _)| l != id);
                }
            }
        }
        let t = Nanos::from_secs(100);
        for &(id, pages) in &live {
            for p in 0..pages {
                let (stamp, _) = store
                    .read(id, p, t)
                    .unwrap_or_else(|e| panic!("{policy:?}: lost object {id}: {e}"));
                assert_eq!(stamp, (id << 8) | p as u64, "{policy:?}");
            }
        }
        assert!(store.write_amplification() >= 1.0);
    }
}

/// Device-level invariant across a whole stack run: flash never counts
/// more valid pages than the host has live, and WA accounting is
/// consistent between layers.
#[test]
fn cross_layer_accounting_is_consistent() {
    let mut e = BlockEmu::new(zns(4), 2, ReclaimPolicy::Immediate);
    let cap = e.capacity_pages();
    let mut t = Nanos::ZERO;
    for lba in 0..cap {
        t = e.write(lba, t).unwrap();
    }
    let mut x = 9u64;
    for _ in 0..3 * cap {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        t = e.write(x % cap, t).unwrap();
        t = e.maybe_reclaim(t).unwrap().1;
    }
    let host_wa = e.write_amplification();
    let flash_wa = e.device().flash_stats().write_amplification();
    // Host relocations go through simple-copy, which flash counts as
    // copies; the two WA numbers must agree.
    assert!(
        (host_wa - flash_wa).abs() < 0.05,
        "host WA {host_wa} vs flash WA {flash_wa}"
    );
}
