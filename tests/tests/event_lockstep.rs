//! The event-driven core's contract: bit-for-bit lockstep with the
//! preserved polling oracle.
//!
//! PR 8 rewrote the queued dispatch path ([`bh_core::QueueCore::Event`])
//! onto a next-event calendar; the original per-op loop survives as
//! [`bh_core::QueueCore::Polling`]. These tests run the *identical*
//! workload through both cores — every stack, queue depth, pacing mode,
//! maintenance cadence, and seed in the quick-experiment envelope — and
//! require byte-identical everything: histogram buckets, virtual-time
//! stamps, error counts, WA bit patterns, flash counters, sampler
//! `Series` points, live-counter snapshots, and the full trace event
//! stream (span ids included).
//!
//! The `#[ignore]`d sweep at the bottom is the nightly exhaustive leg:
//! hundreds of randomized configurations, seeded from
//! `BH_LOCKSTEP_SEED` so a red nightly is reproducible locally.

use bh_conv::{ConvConfig, ConvSsd};
use bh_core::{Pacing, QueueCore, RunConfig, RunResult, Runner, Sampler, StackAdmin};
use bh_flash::{FlashConfig, Geometry};
use bh_host::{BlockEmu, ReclaimPolicy};
use bh_metrics::Nanos;
use bh_obs::Obs;
use bh_trace::Tracer;
use bh_workloads::{OpMix, OpStream};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn conv() -> Box<dyn StackAdmin> {
    Box::new(
        ConvSsd::new(ConvConfig::new(
            FlashConfig::tlc(Geometry::small_test()),
            0.15,
        ))
        .unwrap(),
    )
}

fn emu() -> Box<dyn StackAdmin> {
    let cfg =
        bh_zns::ZnsConfig::new(FlashConfig::tlc(Geometry::small_test()), 4).with_zone_limits(8);
    Box::new(BlockEmu::new(
        bh_zns::ZnsDevice::new(cfg).unwrap(),
        2,
        ReclaimPolicy::Immediate,
    ))
}

/// One run configuration in the differential matrix.
#[derive(Debug, Clone, Copy)]
struct Scenario {
    conv_stack: bool,
    seed: u64,
    ops: u64,
    qd: usize,
    pacing: Pacing,
    maintenance_every: u64,
    sample_every: u64,
}

/// Everything observable about a run, rendered to a string so a
/// mismatch prints both sides: the result fingerprint, the flash
/// counters, every sampler sample, the live-counter snapshot, and the
/// complete trace stream.
fn full_fingerprint(
    dev: &dyn StackAdmin,
    res: &RunResult,
    sampler: &Sampler,
    obs: &Obs,
    tracer: &Tracer,
) -> String {
    let s = dev.flash_stats();
    let mut out = format!(
        "reads={:?} writes={:?} elapsed={} errors={} wa={:016x} peak={}\n\
         host_p={} int_p={} copies={} host_r={} int_r={} erases={} busy={}\n\
         obs={:?}\n",
        res.reads.buckets().collect::<Vec<_>>(),
        res.writes.buckets().collect::<Vec<_>>(),
        res.elapsed.as_nanos(),
        res.errors,
        res.device_wa.to_bits(),
        res.peak_in_flight,
        s.host_programs,
        s.internal_programs,
        s.copies,
        s.host_reads,
        s.internal_reads,
        s.erases,
        s.busy.as_nanos(),
        obs.snapshot(),
    );
    for smp in sampler.samples() {
        out.push_str(&format!(
            "sample at={} ops={} iwa={:016x} cwa={:016x} qd={} if={}\n",
            smp.at.as_nanos(),
            smp.ops_done,
            smp.interval_wa.to_bits(),
            smp.cumulative_wa.to_bits(),
            smp.queue_depth,
            smp.in_flight,
        ));
    }
    out.push_str(&format!(
        "trace dropped={} events={:?}\n",
        tracer.dropped(),
        tracer.events(),
    ));
    out
}

/// Runs `sc` under the given core with full instrumentation (obs,
/// sampler, trace) and fingerprints every observable.
fn run_core(sc: Scenario, core: QueueCore) -> String {
    let mut dev = if sc.conv_stack { conv() } else { emu() };
    let tracer = Tracer::ring(1 << 16);
    dev.set_tracer(tracer.clone());
    let obs = Obs::enabled();
    dev.set_obs(obs.clone());
    let t = Runner::fill(dev.as_mut(), Nanos::ZERO).unwrap();
    let mut stream = OpStream::zipfian(dev.capacity_pages(), OpMix::read_heavy(), sc.seed);
    let runner = Runner::new(
        RunConfig::new(sc.ops)
            .with_pacing(sc.pacing)
            .with_maintenance_every(sc.maintenance_every)
            .with_queue_depth(sc.qd)
            .with_queue_core(core),
    )
    .with_obs(obs.clone());
    let mut sampler = Sampler::new(tracer.clone(), sc.sample_every);
    let res = runner
        .run_traced(dev.as_mut(), &mut stream, t, &mut sampler)
        .unwrap();
    full_fingerprint(dev.as_ref(), &res, &sampler, &obs, &tracer)
}

fn assert_lockstep(sc: Scenario) {
    let event = run_core(sc, QueueCore::Event);
    let polling = run_core(sc, QueueCore::Polling);
    assert_eq!(
        event, polling,
        "event core diverged from the polling oracle: {sc:?}"
    );
}

const PACINGS: [Pacing; 3] = [
    Pacing::Closed,
    Pacing::Open {
        interarrival: Nanos::from_nanos(900),
    },
    Pacing::Bursty {
        burst_ops: 64,
        interarrival: Nanos::from_nanos(400),
        idle: Nanos::from_micros(30),
    },
];

/// The quick-experiment envelope: both stacks × the E17 depth sweep ×
/// every pacing mode × maintenance on/off, at two seeds. Runs both
/// cores through each and requires bit-identical observables.
#[test]
fn event_core_matches_polling_oracle_across_quick_matrix() {
    for conv_stack in [true, false] {
        for qd in [2usize, 4, 16] {
            for pacing in PACINGS {
                for maintenance_every in [0u64, 64] {
                    for seed in [0xE8u64, 0x0B5] {
                        assert_lockstep(Scenario {
                            conv_stack,
                            seed,
                            ops: 1200,
                            qd,
                            pacing,
                            maintenance_every,
                            sample_every: 250,
                        });
                    }
                }
            }
        }
    }
}

/// The latent sampler/idle-skip interaction the issue calls out: when
/// the clock skips a Bursty idle window, the interval-WA and
/// queue-depth `Series` points the polling loop produced must still be
/// emitted, at the same instants. Pins the E15/E17-shaped sample count
/// (`ops / sample_every`) on both cores so a time-skip that swallows a
/// sampler tick fails loudly, not silently.
#[test]
fn bursty_time_skip_preserves_sampler_series() {
    for conv_stack in [true, false] {
        for qd in [4usize, 16] {
            let sc = Scenario {
                conv_stack,
                seed: 0xE15,
                ops: 1000,
                qd,
                // Sampler period coprime-ish with the burst length so
                // ticks land both inside bursts and at idle boundaries.
                pacing: Pacing::Bursty {
                    burst_ops: 150,
                    interarrival: Nanos::from_nanos(500),
                    idle: Nanos::from_micros(100),
                },
                maintenance_every: 64,
                sample_every: 250,
            };
            let event = run_core(sc, QueueCore::Event);
            let polling = run_core(sc, QueueCore::Polling);
            assert_eq!(event, polling, "sampler series diverged: {sc:?}");
            let expected = sc.ops / sc.sample_every;
            let got = event.matches("sample at=").count() as u64;
            assert_eq!(
                got, expected,
                "time-skip swallowed sampler ticks: {sc:?} expected {expected} samples"
            );
        }
    }
}

/// QD sweep throughput sanity on the event core: deeper closed-loop
/// windows must never take longer in virtual time than shallower ones
/// (the paper's §2.4 scaling argument, which E17 plots).
#[test]
fn event_core_closed_loop_virtual_time_shrinks_with_depth() {
    for conv_stack in [true, false] {
        let elapsed: Vec<u64> = [1usize, 4, 16]
            .iter()
            .map(|&qd| {
                let mut dev = if conv_stack { conv() } else { emu() };
                let t = Runner::fill(dev.as_mut(), Nanos::ZERO).unwrap();
                let mut stream =
                    OpStream::zipfian(dev.capacity_pages(), OpMix::read_heavy(), 0xE17);
                let runner = Runner::new(
                    RunConfig::new(1500)
                        .with_queue_depth(qd)
                        .with_queue_core(QueueCore::Event),
                );
                let res = runner.run(dev.as_mut(), &mut stream, t).unwrap();
                res.elapsed.as_nanos()
            })
            .collect();
        assert!(
            elapsed[1] <= elapsed[0] && elapsed[2] <= elapsed[1],
            "virtual elapsed must not grow with depth: {elapsed:?}"
        );
    }
}

/// Nightly exhaustive leg: randomized scenarios across the whole
/// configuration space. Runs under `--include-ignored`; seed the sweep
/// with `BH_LOCKSTEP_SEED` to reproduce a failure.
#[test]
#[ignore = "nightly: exhaustive randomized lockstep sweep"]
fn nightly_randomized_lockstep_sweep() {
    let sweep_seed = std::env::var("BH_LOCKSTEP_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0xB10C_4EAD);
    let mut rng = SmallRng::seed_from_u64(sweep_seed);
    for round in 0..60 {
        let pacing = match rng.gen_range(0..3u8) {
            0 => Pacing::Closed,
            1 => Pacing::Open {
                interarrival: Nanos::from_nanos(rng.gen_range(50..3_000)),
            },
            _ => Pacing::Bursty {
                burst_ops: rng.gen_range(8..200),
                interarrival: Nanos::from_nanos(rng.gen_range(50..2_000)),
                idle: Nanos::from_micros(rng.gen_range(1..200)),
            },
        };
        let sc = Scenario {
            conv_stack: rng.gen_bool(0.5),
            seed: rng.gen(),
            ops: rng.gen_range(200..2_500),
            qd: rng.gen_range(2..48),
            pacing,
            maintenance_every: [0u64, 16, 64, 251][rng.gen_range(0..4usize)],
            sample_every: rng.gen_range(50..500),
        };
        eprintln!("round {round}: {sc:?} (sweep seed {sweep_seed:#x})");
        assert_lockstep(sc);
    }
}
