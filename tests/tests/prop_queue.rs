//! Property tests for the queue engine against real device stacks:
//! completions are always a permutation of submissions, retired in the
//! deterministic `(completed, cid)` order, and an acknowledged write is
//! never lost across a power cycle.

use bh_conv::{ConvConfig, ConvSsd};
use bh_core::{IoError, IoRequest, QueueEngine, Runner, StackAdmin, WriteReq};
use bh_flash::{FlashConfig, Geometry};
use bh_host::{BlockEmu, ReclaimPolicy};
use bh_metrics::Nanos;
use bh_zns::{ZnsConfig, ZnsDevice};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn conv_stack() -> Box<dyn StackAdmin> {
    let dev = ConvSsd::new(ConvConfig::new(
        FlashConfig::tlc(Geometry::small_test()),
        0.15,
    ))
    .unwrap();
    Box::new(dev)
}

fn zns_stack() -> Box<dyn StackAdmin> {
    let cfg = ZnsConfig::new(FlashConfig::tlc(Geometry::small_test()), 4).with_zone_limits(8);
    let dev = ZnsDevice::new(cfg).unwrap();
    Box::new(BlockEmu::new(dev, 2, ReclaimPolicy::Immediate))
}

fn exec(dev: &mut dyn StackAdmin, req: &IoRequest, now: Nanos) -> (Nanos, Result<(), IoError>) {
    match *req {
        IoRequest::Read { lba } => match dev.read(lba, now) {
            Ok(done) => (done, Ok(())),
            Err(e) => (now, Err(e)),
        },
        IoRequest::Write { lba, hint } => match dev.write(WriteReq { lba, hint }, now) {
            Ok(done) => (done, Ok(())),
            Err(e) => (now, Err(e)),
        },
        IoRequest::Trim { lba } => match dev.trim(lba) {
            Ok(()) => (now, Ok(())),
            Err(e) => (now, Err(e)),
        },
        IoRequest::Maintenance => match dev.maintenance(now) {
            Ok(done) => (done, Ok(())),
            Err(e) => (now, Err(e)),
        },
    }
}

/// At any queue depth, the completion stream is a permutation of the
/// submission stream: every cid exactly once, retired in `(completed,
/// cid)` order, with sane per-op instants.
#[test]
fn completions_are_a_permutation_of_submissions_at_any_depth() {
    let mut rng = SmallRng::seed_from_u64(0x9E12);
    for round in 0..6 {
        let qd = rng.gen_range(1..=64);
        let mut dev = conv_stack();
        let start = Runner::fill(dev.as_mut(), Nanos::ZERO).unwrap();
        let cap = dev.capacity_pages();

        let mut engine: QueueEngine<IoError> = QueueEngine::new(qd);
        let ops = 400u64;
        let mut arrival = start;
        for _ in 0..ops {
            let lba = rng.gen_range(0..cap);
            let req = match rng.gen_range(0..10) {
                0..=5 => IoRequest::Read { lba },
                6..=8 => IoRequest::Write { lba, hint: None },
                _ => IoRequest::Trim { lba },
            };
            engine.submit(req, arrival);
            engine.pump(|req, t| exec(dev.as_mut(), req, t));
            arrival += Nanos::from_nanos(rng.gen_range(0..50_000));
        }
        engine.flush();

        let mut seen = vec![false; ops as usize];
        let mut prev: Option<(Nanos, u64)> = None;
        let mut drained = 0u64;
        while let Some(c) = engine.pop_completion() {
            drained += 1;
            let i = c.cid as usize;
            assert!(i < ops as usize, "round {round}: cid out of range");
            assert!(!seen[i], "round {round}: cid {i} completed twice");
            seen[i] = true;
            assert!(
                c.issued >= c.submitted,
                "round {round}: issued before arrival"
            );
            assert!(
                c.completed >= c.issued,
                "round {round}: completed before issue"
            );
            let key = (c.completed, c.cid);
            if let Some(p) = prev {
                assert!(
                    p < key,
                    "round {round}: retirement order broke (completed, cid)"
                );
            }
            prev = Some(key);
        }
        assert_eq!(
            drained, ops,
            "round {round} (qd {qd}): lost or grew completions"
        );
        assert!(
            seen.iter().all(|&s| s),
            "round {round}: some cid never completed"
        );
        assert!(
            engine.peak_in_flight() <= qd,
            "round {round}: window overflowed its depth"
        );
    }
}

/// An acknowledged write — retired through the completion queue at or
/// before the power-loss instant — is still readable after the stack
/// recovers. Unacked in-flight writes may or may not survive; that is
/// the crash-consistency boundary the engine's `cut` models.
#[test]
fn no_acked_write_is_lost_across_power_cycle() {
    for (label, mk) in [
        ("conventional", conv_stack as fn() -> Box<dyn StackAdmin>),
        ("zns+blockemu", zns_stack as fn() -> Box<dyn StackAdmin>),
    ] {
        let mut rng = SmallRng::seed_from_u64(0xACDC);
        for qd in [2usize, 8, 32] {
            let mut dev = mk();
            let start = Runner::fill(dev.as_mut(), Nanos::ZERO).unwrap();
            let cap = dev.capacity_pages();

            let mut engine: QueueEngine<IoError> = QueueEngine::new(qd);
            let mut arrival = start;
            for _ in 0..300 {
                let lba = rng.gen_range(0..cap);
                engine.submit(IoRequest::Write { lba, hint: None }, arrival);
                engine.pump(|req, t| exec(dev.as_mut(), req, t));
                arrival += Nanos::from_nanos(2_000);
            }

            // Power fails midway through the in-flight window: half the
            // virtual span since the run started is gone.
            let at =
                start + Nanos::from_nanos(engine.last_done().saturating_sub(start).as_nanos() / 2);
            let lost = engine.cut(at);

            let mut acked = Vec::new();
            while let Some(c) = engine.pop_completion() {
                assert!(
                    c.completed <= at,
                    "{label} qd {qd}: completion after the cut was acked"
                );
                if c.ok() {
                    if let IoRequest::Write { lba, .. } = c.req {
                        acked.push(lba);
                    }
                }
            }
            assert!(
                !acked.is_empty(),
                "{label} qd {qd}: cut too early to test anything"
            );
            for c in &lost.unacked {
                assert!(
                    c.completed > at,
                    "{label} qd {qd}: unacked op had completed before the cut"
                );
            }

            let (recovered_at, _scanned) = dev.power_cycle(at).unwrap();
            for &lba in &acked {
                dev.read(lba, recovered_at).unwrap_or_else(|e| {
                    panic!("{label} qd {qd}: acked write of LBA {lba} lost after power cycle: {e}")
                });
            }
        }
    }
}
