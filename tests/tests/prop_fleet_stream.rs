//! Property test for the streaming fleet engine: the incremental
//! session must be byte-identical to the serial batch merge — the old
//! `plan_fleet` + `FleetReport::from_shards` path — no matter how the
//! scheduler is shaped. Each case draws a random fleet (shard count,
//! tenant skew, ops, placement, fault template, optional mid-run
//! migration) and a random scheduler shape (worker count, admission
//! window, checkpoint cut), all from a fixed master seed, so every
//! failure replays exactly.

use bh_faults::FaultConfig;
use bh_flash::Geometry;
use bh_fleet::{plan_fleet, run_fleet, FleetConfig, FleetReport, FleetSession, Placement};
use bh_workloads::split_seed;

const MASTER: u64 = 0x57E4;
const CASES: u64 = 16;

/// Uniform draw in `0..bound` from the case's private stream.
fn draw(case: u64, salt: u64, bound: u64) -> u64 {
    split_seed(MASTER, case * 1000 + salt) % bound
}

/// A random but fully seed-determined fleet config.
fn random_cfg(case: u64) -> FleetConfig {
    let shards = 2 + draw(case, 1, 10) as usize;
    let tenants = shards as u32 * (2 + draw(case, 2, 3) as u32);
    let ops = 200 + draw(case, 3, 600);
    let mut cfg = FleetConfig::mixed(shards, Geometry::small_test(), tenants, MASTER ^ case)
        .with_theta([0.6, 0.9, 1.2][draw(case, 4, 3) as usize])
        .with_ops_per_shard(ops)
        .with_placement(
            [Placement::Hash, Placement::RoundRobin, Placement::LoadAware]
                [draw(case, 5, 3) as usize],
        );
    cfg.sample_every = 50 + draw(case, 6, 200);
    if draw(case, 7, 2) == 0 {
        // Mild template: retries and redrives fire, runs still complete.
        cfg.faults = Some(
            FaultConfig::new(0) // template seed is ignored; shards derive their own
                .with_read_retry_ppm(20_000)
                .with_program_fail_ppm(5_000),
        );
    }
    if draw(case, 8, 2) == 0 {
        cfg = cfg.with_migration(draw(case, 9, ops + 1), Placement::LoadAware);
    }
    cfg
}

/// The batch oracle: serial plan-and-run, one monolithic merge.
fn batch_json(cfg: &FleetConfig) -> String {
    let results: Vec<_> = plan_fleet(cfg)
        .iter()
        .map(|p| p.run().expect("oracle shard run"))
        .collect();
    FleetReport::from_shards(&results).to_json()
}

#[test]
fn streaming_session_matches_the_batch_oracle_on_random_fleets() {
    for case in 0..CASES {
        let cfg = random_cfg(case);
        let jobs = 1 + draw(case, 10, 4) as usize;
        let window = 1 + draw(case, 11, 8) as u32;
        let oracle = batch_json(&cfg);
        let streamed = FleetSession::new(&cfg)
            .with_jobs(jobs)
            .with_window(window)
            .run()
            .expect("streaming run")
            .report
            .to_json();
        assert_eq!(
            streamed,
            oracle,
            "case {case}: streaming (jobs={jobs}, window={window}) diverged from batch \
             on {} shards",
            cfg.shards()
        );
        let wrapped = run_fleet(&cfg, jobs).expect("run_fleet").report.to_json();
        assert_eq!(wrapped, oracle, "case {case}: run_fleet wrapper diverged");
    }
}

#[test]
fn checkpoint_resume_matches_one_shot_at_any_cut() {
    for case in 0..CASES {
        let cfg = random_cfg(case + 500);
        let shards = cfg.shards() as u32;
        let cut = draw(case, 20, shards as u64 + 1) as u32;
        let jobs_a = 1 + draw(case, 21, 4) as usize;
        let jobs_b = 1 + draw(case, 22, 4) as usize;
        let oracle = batch_json(&cfg);

        let mut first = FleetSession::new(&cfg).with_jobs(jobs_a);
        first.run_to(cut).expect("first half");
        assert_eq!(first.shards_done(), cut);
        let resumed = FleetSession::resume(&cfg, first.into_checkpoint())
            .with_jobs(jobs_b)
            .run()
            .expect("resumed run")
            .report
            .to_json();
        assert_eq!(
            resumed, oracle,
            "case {case}: checkpoint at {cut}/{shards} (jobs {jobs_a}->{jobs_b}) \
             diverged from the one-shot report"
        );
    }
}
