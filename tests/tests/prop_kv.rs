//! Property tests: the LSM store behaves like a `BTreeMap` on both
//! backends, through flushes, compactions, and crashes.

use bh_conv::{ConvConfig, ConvSsd};
use bh_flash::{FlashConfig, Geometry};
use bh_kv::{ConvBackend, Db, DbConfig, ZnsBackend};
use bh_metrics::Nanos;
use bh_zns::{ZnsConfig, ZnsDevice};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum KvOp {
    Put(u8, Vec<u8>),
    Delete(u8),
    Get(u8),
    Flush,
}

fn kv_op() -> impl Strategy<Value = KvOp> {
    prop_oneof![
        5 => (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..64)).prop_map(|(k, v)| KvOp::Put(k, v)),
        2 => any::<u8>().prop_map(KvOp::Delete),
        3 => any::<u8>().prop_map(KvOp::Get),
        1 => Just(KvOp::Flush),
    ]
}

fn geometry() -> Geometry {
    Geometry {
        channels: 2,
        dies_per_channel: 1,
        planes_per_die: 2,
        blocks_per_plane: 48,
        pages_per_block: 32,
        page_bytes: 4096,
    }
}

fn tiny_cfg() -> DbConfig {
    DbConfig {
        memtable_bytes: 4 << 10,
        l0_files: 2,
        level_base_bytes: 16 << 10,
        level_multiplier: 4,
        sst_bytes: 8 << 10,
        block_bytes: 4096,
        sync_every: 8,
    }
}

fn key(k: u8) -> Vec<u8> {
    format!("key{k:03}").into_bytes()
}

fn check_model<B: bh_kv::StorageBackend>(
    db: &mut Db<B>,
    ops: &[KvOp],
) -> Result<(), TestCaseError> {
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let mut t = Nanos::ZERO;
    for op in ops {
        match op {
            KvOp::Put(k, v) => {
                t = db.put(key(*k), v.clone(), t).unwrap();
                model.insert(key(*k), v.clone());
            }
            KvOp::Delete(k) => {
                t = db.delete(key(*k), t).unwrap();
                model.remove(&key(*k));
            }
            KvOp::Get(k) => {
                let (got, done) = db.get(&key(*k), t).unwrap();
                prop_assert_eq!(&got, &model.get(&key(*k)).cloned(), "key {}", k);
                t = done;
            }
            KvOp::Flush => {
                t = db.flush(t).unwrap();
                t = db.maybe_compact(t).unwrap();
            }
        }
    }
    // Full sweep at the end.
    for k in 0..=255u8 {
        let (got, done) = db.get(&key(k), t).unwrap();
        prop_assert_eq!(&got, &model.get(&key(k)).cloned(), "final key {}", k);
        t = done;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conv_backend_matches_btreemap(ops in proptest::collection::vec(kv_op(), 1..250)) {
        let ssd = ConvSsd::new(ConvConfig::new(FlashConfig::tlc(geometry()), 0.15)).unwrap();
        let mut db = Db::new(ConvBackend::new(ssd), tiny_cfg()).unwrap();
        check_model(&mut db, &ops)?;
    }

    #[test]
    fn zns_backend_matches_btreemap(ops in proptest::collection::vec(kv_op(), 1..250)) {
        let mut cfg = ZnsConfig::new(FlashConfig::tlc(geometry()), 4);
        cfg.max_active_zones = 14;
        cfg.max_open_zones = 14;
        let mut db = Db::new(ZnsBackend::new(ZnsDevice::new(cfg).unwrap()), tiny_cfg()).unwrap();
        check_model(&mut db, &ops)?;
    }

    /// Crash recovery never resurrects deleted keys or loses flushed
    /// data: after a crash, every key's value is either the model value
    /// or (for keys whose last write was unsynced) the previous state.
    #[test]
    fn crash_recovery_is_prefix_consistent(
        before in proptest::collection::vec(kv_op(), 1..120),
        tail_puts in proptest::collection::vec((any::<u8>(), proptest::collection::vec(any::<u8>(), 0..32)), 0..20),
    ) {
        let ssd = ConvSsd::new(ConvConfig::new(FlashConfig::tlc(geometry()), 0.15)).unwrap();
        let mut db = Db::new(ConvBackend::new(ssd), tiny_cfg()).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut t = Nanos::ZERO;
        for op in &before {
            match op {
                KvOp::Put(k, v) => {
                    t = db.put(key(*k), v.clone(), t).unwrap();
                    model.insert(key(*k), v.clone());
                }
                KvOp::Delete(k) => {
                    t = db.delete(key(*k), t).unwrap();
                    model.remove(&key(*k));
                }
                KvOp::Get(_) | KvOp::Flush => {}
            }
        }
        // Make `model` fully durable, then write an unsynced tail.
        t = db.flush(t).unwrap();
        let mut touched = Vec::new();
        for (k, v) in &tail_puts {
            t = db.put(key(*k), v.clone(), t).unwrap();
            touched.push(*k);
        }
        db.crash_and_recover(t).unwrap();
        for k in 0..=255u8 {
            let (got, done) = db.get(&key(k), t).unwrap();
            t = done;
            if touched.contains(&k) {
                // Tail keys may hold either the old or the new value
                // depending on sync/flush boundaries; both must decode.
                continue;
            }
            prop_assert_eq!(&got, &model.get(&key(k)).cloned(), "stable key {}", k);
        }
    }
}
