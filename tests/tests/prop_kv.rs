//! Property tests: the LSM store behaves like a `BTreeMap` on both
//! backends, through flushes, compactions, and crashes.
//!
//! Implemented as seeded-loop property tests (the offline build vendors
//! no proptest); each case prints its seed on failure for replay.

use bh_conv::{ConvConfig, ConvSsd};
use bh_flash::{FlashConfig, Geometry};
use bh_kv::{ConvBackend, Db, DbConfig, ZnsBackend};
use bh_metrics::Nanos;
use bh_zns::{ZnsConfig, ZnsDevice};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum KvOp {
    Put(u8, Vec<u8>),
    Delete(u8),
    Get(u8),
    Flush,
}

fn gen_value(rng: &mut SmallRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..=max_len);
    (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect()
}

fn gen_op(rng: &mut SmallRng) -> KvOp {
    let k = rng.gen_range(0u32..256) as u8;
    // Weights mirror the original proptest strategy: 5/2/3/1.
    match rng.gen_range(0u32..11) {
        0..=4 => KvOp::Put(k, gen_value(rng, 63)),
        5..=6 => KvOp::Delete(k),
        7..=9 => KvOp::Get(k),
        _ => KvOp::Flush,
    }
}

fn geometry() -> Geometry {
    Geometry {
        channels: 2,
        dies_per_channel: 1,
        planes_per_die: 2,
        blocks_per_plane: 48,
        pages_per_block: 32,
        page_bytes: 4096,
    }
}

fn tiny_cfg() -> DbConfig {
    DbConfig {
        memtable_bytes: 4 << 10,
        l0_files: 2,
        level_base_bytes: 16 << 10,
        level_multiplier: 4,
        sst_bytes: 8 << 10,
        block_bytes: 4096,
        sync_every: 8,
    }
}

fn key(k: u8) -> Vec<u8> {
    format!("key{k:03}").into_bytes()
}

fn check_model<B: bh_kv::StorageBackend>(db: &mut Db<B>, ops: &[KvOp], case: u64) {
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let mut t = Nanos::ZERO;
    for op in ops {
        match op {
            KvOp::Put(k, v) => {
                t = db.put(key(*k), v.clone(), t).unwrap();
                model.insert(key(*k), v.clone());
            }
            KvOp::Delete(k) => {
                t = db.delete(key(*k), t).unwrap();
                model.remove(&key(*k));
            }
            KvOp::Get(k) => {
                let (got, done) = db.get(&key(*k), t).unwrap();
                assert_eq!(got, model.get(&key(*k)).cloned(), "case {case} key {k}");
                t = done;
            }
            KvOp::Flush => {
                t = db.flush(t).unwrap();
                t = db.maybe_compact(t).unwrap();
            }
        }
    }
    // Full sweep at the end.
    for k in 0..=255u8 {
        let (got, done) = db.get(&key(k), t).unwrap();
        assert_eq!(
            got,
            model.get(&key(k)).cloned(),
            "case {case} final key {k}"
        );
        t = done;
    }
}

#[test]
fn conv_backend_matches_btreemap() {
    for case in 0u64..24 {
        let mut rng = SmallRng::seed_from_u64(0x4B00_0000 ^ case);
        let n_ops = rng.gen_range(1usize..250);
        let ops: Vec<KvOp> = (0..n_ops).map(|_| gen_op(&mut rng)).collect();
        let ssd = ConvSsd::new(ConvConfig::new(FlashConfig::tlc(geometry()), 0.15)).unwrap();
        let mut db = Db::new(ConvBackend::new(ssd), tiny_cfg()).unwrap();
        check_model(&mut db, &ops, case);
    }
}

#[test]
fn zns_backend_matches_btreemap() {
    for case in 0u64..24 {
        let mut rng = SmallRng::seed_from_u64(0x4B00_1000 ^ case);
        let n_ops = rng.gen_range(1usize..250);
        let ops: Vec<KvOp> = (0..n_ops).map(|_| gen_op(&mut rng)).collect();
        let cfg = ZnsConfig::new(FlashConfig::tlc(geometry()), 4).with_zone_limits(14);
        let mut db = Db::new(ZnsBackend::new(ZnsDevice::new(cfg).unwrap()), tiny_cfg()).unwrap();
        check_model(&mut db, &ops, case);
    }
}

/// Crash recovery never resurrects deleted keys or loses flushed data:
/// after a crash, every key's value is either the model value or (for
/// keys whose last write was unsynced) the previous state.
#[test]
fn crash_recovery_is_prefix_consistent() {
    for case in 0u64..24 {
        let mut rng = SmallRng::seed_from_u64(0x4B00_2000 ^ case);
        let n_before = rng.gen_range(1usize..120);
        let before: Vec<KvOp> = (0..n_before).map(|_| gen_op(&mut rng)).collect();
        let n_tail = rng.gen_range(0usize..20);
        let tail_puts: Vec<(u8, Vec<u8>)> = (0..n_tail)
            .map(|_| (rng.gen_range(0u32..256) as u8, gen_value(&mut rng, 31)))
            .collect();
        let ssd = ConvSsd::new(ConvConfig::new(FlashConfig::tlc(geometry()), 0.15)).unwrap();
        let mut db = Db::new(ConvBackend::new(ssd), tiny_cfg()).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut t = Nanos::ZERO;
        for op in &before {
            match op {
                KvOp::Put(k, v) => {
                    t = db.put(key(*k), v.clone(), t).unwrap();
                    model.insert(key(*k), v.clone());
                }
                KvOp::Delete(k) => {
                    t = db.delete(key(*k), t).unwrap();
                    model.remove(&key(*k));
                }
                KvOp::Get(_) | KvOp::Flush => {}
            }
        }
        // Make `model` fully durable, then write an unsynced tail.
        t = db.flush(t).unwrap();
        let mut touched = Vec::new();
        for (k, v) in &tail_puts {
            t = db.put(key(*k), v.clone(), t).unwrap();
            touched.push(*k);
        }
        db.crash_and_recover(t).unwrap();
        for k in 0..=255u8 {
            let (got, done) = db.get(&key(k), t).unwrap();
            t = done;
            if touched.contains(&k) {
                // Tail keys may hold either the old or the new value
                // depending on sync/flush boundaries; both must decode.
                continue;
            }
            assert_eq!(
                got,
                model.get(&key(k)).cloned(),
                "case {case} stable key {k}"
            );
        }
    }
}
