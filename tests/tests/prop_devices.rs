//! Property tests: both device stacks behave like a simple model array
//! under arbitrary operation sequences.
//!
//! Implemented as seeded-loop property tests (the offline build vendors
//! no proptest); each case prints its seed on failure for replay.

use bh_conv::{ConvConfig, ConvError, ConvSsd};
use bh_flash::{FlashConfig, Geometry};
use bh_host::{BlockEmu, HostError, ReclaimPolicy};
use bh_metrics::Nanos;
use bh_zns::{ZnsConfig, ZnsDevice};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone, Copy)]
enum DevOp {
    Write(u64),
    Read(u64),
    Trim(u64),
    Maintain,
}

fn gen_op(rng: &mut SmallRng, cap: u64) -> DevOp {
    // Weights mirror the original proptest strategy: 4/3/1/1.
    match rng.gen_range(0u32..9) {
        0..=3 => DevOp::Write(rng.gen_range(0..cap)),
        4..=6 => DevOp::Read(rng.gen_range(0..cap)),
        7 => DevOp::Trim(rng.gen_range(0..cap)),
        _ => DevOp::Maintain,
    }
}

fn conv_dev() -> ConvSsd {
    ConvSsd::new(ConvConfig::new(
        FlashConfig::tlc(Geometry::small_test()),
        0.15,
    ))
    .unwrap()
}

fn emu_dev() -> BlockEmu {
    let cfg = ZnsConfig::new(FlashConfig::tlc(Geometry::small_test()), 4).with_zone_limits(8);
    BlockEmu::new(ZnsDevice::new(cfg).unwrap(), 2, ReclaimPolicy::Immediate)
}

/// The conventional SSD is linearizable against a model array: every
/// read returns the stamp of the latest write to that LBA.
#[test]
fn conv_matches_model() {
    for case in 0u64..48 {
        let mut rng = SmallRng::seed_from_u64(0xDE71_0000 ^ case);
        let n_ops = rng.gen_range(1usize..400);
        let mut dev = conv_dev();
        let cap = dev.capacity_pages();
        let mut model: Vec<Option<u64>> = vec![None; cap as usize];
        let mut t = Nanos::ZERO;
        for _ in 0..n_ops {
            match gen_op(&mut rng, 128) {
                DevOp::Write(lba) => {
                    let lba = lba % cap;
                    let w = dev.write(lba, t).unwrap();
                    model[lba as usize] = Some(w.stamp);
                    t = w.done;
                }
                DevOp::Read(lba) => {
                    let lba = lba % cap;
                    match (dev.read(lba, t), model[lba as usize]) {
                        (Ok((stamp, done)), Some(expect)) => {
                            assert_eq!(stamp, expect, "case {case}");
                            t = done;
                        }
                        (Err(ConvError::Unmapped(_)), None) => {}
                        (got, want) => {
                            panic!("case {case}: mismatch: dev {got:?} vs model {want:?}")
                        }
                    }
                }
                DevOp::Trim(lba) => {
                    let lba = lba % cap;
                    dev.trim(lba).unwrap();
                    model[lba as usize] = None;
                }
                DevOp::Maintain => {
                    dev.maintenance(t, t + Nanos::from_millis(20)).unwrap();
                }
            }
        }
        assert!(dev.write_amplification() >= 1.0, "case {case}");
    }
}

/// The ZNS block emulation satisfies the same model.
#[test]
fn blockemu_matches_model() {
    for case in 0u64..48 {
        let mut rng = SmallRng::seed_from_u64(0xDE71_1000 ^ case);
        let n_ops = rng.gen_range(1usize..400);
        let mut dev = emu_dev();
        let cap = dev.capacity_pages();
        let mut model: Vec<Option<u64>> = vec![None; cap as usize];
        let mut t = Nanos::ZERO;
        for _ in 0..n_ops {
            match gen_op(&mut rng, 128) {
                DevOp::Write(lba) => {
                    let lba = lba % cap;
                    let done = dev.write(lba, t).unwrap();
                    // BlockEmu stamps are its own counter; remember via read.
                    let (stamp, done2) = dev.read(lba, done).unwrap();
                    model[lba as usize] = Some(stamp);
                    t = done2;
                }
                DevOp::Read(lba) => {
                    let lba = lba % cap;
                    match (dev.read(lba, t), model[lba as usize]) {
                        (Ok((stamp, done)), Some(expect)) => {
                            assert_eq!(stamp, expect, "case {case}");
                            t = done;
                        }
                        (Err(HostError::Unmapped(_)), None) => {}
                        (got, want) => {
                            panic!("case {case}: mismatch: dev {got:?} vs model {want:?}")
                        }
                    }
                }
                DevOp::Trim(lba) => {
                    let lba = lba % cap;
                    dev.trim(lba).unwrap();
                    model[lba as usize] = None;
                }
                DevOp::Maintain => {
                    t = dev.maybe_reclaim(t).unwrap().1;
                }
            }
        }
        assert!(dev.write_amplification() >= 1.0, "case {case}");
    }
}

/// Write amplification is always >= 1 and finite after host writes, and
/// completion times never precede issue times, for any uniform write
/// burst.
#[test]
fn timing_and_wa_invariants() {
    for case in 0u64..48 {
        let mut rng = SmallRng::seed_from_u64(0xDE71_2000 ^ case);
        let mut x = rng.gen_range(0u64..1000);
        let burst = rng.gen_range(1usize..300);
        let mut dev = conv_dev();
        let cap = dev.capacity_pages();
        let mut t = Nanos::ZERO;
        for _ in 0..burst {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let w = dev.write(x % cap, t).unwrap();
            assert!(w.done >= t, "case {case}");
            t = w.done;
        }
        let wa = dev.write_amplification();
        assert!(wa >= 1.0 && wa.is_finite(), "case {case}");
    }
}
