//! Property tests: both device stacks behave like a simple model array
//! under arbitrary operation sequences.

use bh_conv::{ConvConfig, ConvError, ConvSsd};
use bh_flash::{FlashConfig, Geometry};
use bh_host::{BlockEmu, HostError, ReclaimPolicy};
use bh_metrics::Nanos;
use bh_zns::{ZnsConfig, ZnsDevice};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum DevOp {
    Write(u64),
    Read(u64),
    Trim(u64),
    Maintain,
}

fn op_strategy(cap: u64) -> impl Strategy<Value = DevOp> {
    prop_oneof![
        4 => (0..cap).prop_map(DevOp::Write),
        3 => (0..cap).prop_map(DevOp::Read),
        1 => (0..cap).prop_map(DevOp::Trim),
        1 => Just(DevOp::Maintain),
    ]
}

fn conv_dev() -> ConvSsd {
    ConvSsd::new(ConvConfig::new(
        FlashConfig::tlc(Geometry::small_test()),
        0.15,
    ))
    .unwrap()
}

fn emu_dev() -> BlockEmu {
    let mut cfg = ZnsConfig::new(FlashConfig::tlc(Geometry::small_test()), 4);
    cfg.max_active_zones = 8;
    cfg.max_open_zones = 8;
    BlockEmu::new(ZnsDevice::new(cfg).unwrap(), 2, ReclaimPolicy::Immediate)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The conventional SSD is linearizable against a model array: every
    /// read returns the stamp of the latest write to that LBA.
    #[test]
    fn conv_matches_model(ops in proptest::collection::vec(op_strategy(128), 1..400)) {
        let mut dev = conv_dev();
        let cap = dev.capacity_pages();
        let mut model: Vec<Option<u64>> = vec![None; cap as usize];
        let mut t = Nanos::ZERO;
        for op in ops {
            match op {
                DevOp::Write(lba) => {
                    let lba = lba % cap;
                    let w = dev.write(lba, t).unwrap();
                    model[lba as usize] = Some(w.stamp);
                    t = w.done;
                }
                DevOp::Read(lba) => {
                    let lba = lba % cap;
                    match (dev.read(lba, t), model[lba as usize]) {
                        (Ok((stamp, done)), Some(expect)) => {
                            prop_assert_eq!(stamp, expect);
                            t = done;
                        }
                        (Err(ConvError::Unmapped(_)), None) => {}
                        (got, want) => {
                            return Err(TestCaseError::fail(
                                format!("mismatch: dev {got:?} vs model {want:?}")));
                        }
                    }
                }
                DevOp::Trim(lba) => {
                    let lba = lba % cap;
                    dev.trim(lba).unwrap();
                    model[lba as usize] = None;
                }
                DevOp::Maintain => {
                    dev.maintenance(t, t + Nanos::from_millis(20)).unwrap();
                }
            }
        }
        prop_assert!(dev.write_amplification() >= 1.0);
    }

    /// The ZNS block emulation satisfies the same model.
    #[test]
    fn blockemu_matches_model(ops in proptest::collection::vec(op_strategy(128), 1..400)) {
        let mut dev = emu_dev();
        let cap = dev.capacity_pages();
        let mut model: Vec<Option<u64>> = vec![None; cap as usize];
        let mut t = Nanos::ZERO;
        for op in ops {
            match op {
                DevOp::Write(lba) => {
                    let lba = lba % cap;
                    let done = dev.write(lba, t).unwrap();
                    // BlockEmu stamps are its own counter; remember via read.
                    let (stamp, done2) = dev.read(lba, done).unwrap();
                    model[lba as usize] = Some(stamp);
                    t = done2;
                }
                DevOp::Read(lba) => {
                    let lba = lba % cap;
                    match (dev.read(lba, t), model[lba as usize]) {
                        (Ok((stamp, done)), Some(expect)) => {
                            prop_assert_eq!(stamp, expect);
                            t = done;
                        }
                        (Err(HostError::Unmapped(_)), None) => {}
                        (got, want) => {
                            return Err(TestCaseError::fail(
                                format!("mismatch: dev {got:?} vs model {want:?}")));
                        }
                    }
                }
                DevOp::Trim(lba) => {
                    let lba = lba % cap;
                    dev.trim(lba).unwrap();
                    model[lba as usize] = None;
                }
                DevOp::Maintain => {
                    t = dev.maybe_reclaim(t).unwrap().1;
                }
            }
        }
        prop_assert!(dev.write_amplification() >= 1.0);
    }

    /// Write amplification is always >= 1 and finite, and completion
    /// times never precede issue times, for any uniform write burst.
    #[test]
    fn timing_and_wa_invariants(seed in 0u64..1000, burst in 1usize..300) {
        let mut dev = conv_dev();
        let cap = dev.capacity_pages();
        let mut x = seed;
        let mut t = Nanos::ZERO;
        for _ in 0..burst {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let w = dev.write(x % cap, t).unwrap();
            prop_assert!(w.done >= t);
            t = w.done;
        }
        let wa = dev.write_amplification();
        prop_assert!(wa >= 1.0 && wa.is_finite());
    }
}
