//! Property and differential tests for the deterministic fault layer.
//!
//! Three guarantees are locked in here:
//!
//! 1. **Crash safety**: power loss at *any* operation index, on either
//!    stack, recovers exactly the acknowledged state — every acked write
//!    reads back with the same stamp it had before the loss.
//! 2. **Determinism**: the same fault seed produces a byte-identical
//!    fault schedule, on any thread, any number of times.
//! 3. **Quiet-plan transparency**: installing an all-zero-rate plan is
//!    byte-identical to installing no fault layer at all — the fault
//!    path costs nothing when silent.

use bh_conv::{ConvConfig, ConvSsd};
use bh_core::{BlockInterface, WriteReq};
use bh_faults::{FaultConfig, FaultPlan};
use bh_flash::{decode_oob, FlashConfig, Geometry};
use bh_host::{BlockEmu, ReclaimPolicy};
use bh_metrics::Nanos;
use bh_zns::{ZnsConfig, ZnsDevice};

/// Base seed for the crash sweeps: fixed by default, overridable via
/// `BH_FAULT_SEED` so CI can probe fresh seeds (the value is printed by
/// the workflow, so a red run replays exactly).
fn base_seed(default: u64) -> u64 {
    std::env::var("BH_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Fault mix for the crash sweeps: frequent enough that short runs hit
/// redrives and retries, mild enough that devices stay writable.
fn noisy(seed: u64) -> FaultConfig {
    FaultConfig::new(seed)
        .with_program_fail_ppm(15_000)
        .with_erase_fail_ppm(10_000)
        .with_read_retry_ppm(20_000)
}

/// The concrete per-stack surface the crash property needs: stamped
/// reads (the block-interface trait only returns instants).
trait Stack {
    fn cap(&self) -> u64;
    fn write(&mut self, lba: u64, now: Nanos) -> Nanos;
    fn read(&mut self, lba: u64, now: Nanos) -> (u64, Nanos);
    fn power_cycle(&mut self, now: Nanos) -> (Nanos, u64);
}

impl Stack for ConvSsd {
    fn cap(&self) -> u64 {
        self.capacity_pages()
    }
    fn write(&mut self, lba: u64, now: Nanos) -> Nanos {
        ConvSsd::write(self, lba, now).unwrap().done
    }
    fn read(&mut self, lba: u64, now: Nanos) -> (u64, Nanos) {
        ConvSsd::read(self, lba, now).unwrap()
    }
    fn power_cycle(&mut self, now: Nanos) -> (Nanos, u64) {
        ConvSsd::power_cycle(self, now).unwrap()
    }
}

impl Stack for BlockEmu {
    fn cap(&self) -> u64 {
        self.capacity_pages()
    }
    fn write(&mut self, lba: u64, now: Nanos) -> Nanos {
        BlockEmu::write(self, lba, now).unwrap()
    }
    fn read(&mut self, lba: u64, now: Nanos) -> (u64, Nanos) {
        BlockEmu::read(self, lba, now).unwrap()
    }
    fn power_cycle(&mut self, now: Nanos) -> (Nanos, u64) {
        BlockEmu::power_cycle(self, now).unwrap()
    }
}

fn conv(faults: Option<FaultConfig>) -> ConvSsd {
    let mut ssd = ConvSsd::new(ConvConfig::new(
        FlashConfig::tlc(Geometry::small_test()),
        0.15,
    ))
    .unwrap();
    if let Some(f) = faults {
        ssd.install_faults(f);
    }
    ssd
}

fn emu(faults: Option<FaultConfig>) -> BlockEmu {
    let cfg = ZnsConfig::new(FlashConfig::tlc(Geometry::small_test()), 4).with_zone_limits(8);
    let mut e = BlockEmu::new(ZnsDevice::new(cfg).unwrap(), 3, ReclaimPolicy::Immediate);
    if let Some(f) = faults {
        e.install_faults(f);
    }
    e
}

/// Drives `crash_at` random acked writes under a noisy fault plan, power
/// cycles, and checks that recovery reproduces the acked state exactly.
fn crash_preserves_acked_state<S: Stack>(mut dev: S, crash_at: u64, seed: u64) {
    let cap = dev.cap();
    let mut written = std::collections::BTreeSet::new();
    let mut t = Nanos::ZERO;
    let mut x = seed | 1;
    for _ in 0..crash_at {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let lba = x % cap;
        t = dev.write(lba, t);
        written.insert(lba);
    }
    // Snapshot the acked state: the write path returned, so every one of
    // these pages is durable.
    let before: Vec<(u64, u64)> = written
        .iter()
        .map(|&lba| {
            let (stamp, done) = dev.read(lba, t);
            t = done;
            (lba, stamp)
        })
        .collect();
    let (done, _scanned) = dev.power_cycle(t);
    for &(lba, stamp) in &before {
        let (s, _) = dev.read(lba, done);
        assert_eq!(
            s, stamp,
            "lba {lba} lost or changed across power loss at op {crash_at}"
        );
        let (_seq, tagged) = decode_oob(s);
        assert_eq!(tagged, lba, "recovered stamp belongs to a different lba");
    }
}

/// A spread of crash indices — zero work, first op, mid-zone, zone
/// boundaries, several times the logical capacity (forcing GC/reclaim
/// under faults before the loss).
fn crash_points(cap: u64) -> Vec<u64> {
    vec![0, 1, 2, 7, 33, cap / 2, cap, cap + 13, 2 * cap, 3 * cap]
}

#[test]
fn conv_crash_at_sampled_indices_preserves_acked_writes() {
    let cap = conv(None).cap();
    for k in crash_points(cap) {
        crash_preserves_acked_state(conv(Some(noisy(base_seed(0xC0)))), k, base_seed(0x5EED) + k);
    }
}

#[test]
fn zns_crash_at_sampled_indices_preserves_acked_writes() {
    let cap = emu(None).cap();
    for k in crash_points(cap) {
        crash_preserves_acked_state(emu(Some(noisy(base_seed(0x21)))), k, base_seed(0x5EED) + k);
    }
}

/// The exhaustive sweep — every crash index over a full device
/// lifetime — runs nightly (`cargo test -- --include-ignored`).
#[test]
#[ignore = "exhaustive sweep; run via --include-ignored"]
fn both_stacks_survive_crash_at_every_index() {
    let cap = emu(None).cap().min(conv(None).cap());
    for k in 0..=2 * cap {
        crash_preserves_acked_state(conv(Some(noisy(base_seed(0xC0)))), k, base_seed(0x5EED) + k);
        crash_preserves_acked_state(emu(Some(noisy(base_seed(0x21)))), k, base_seed(0x5EED) + k);
    }
}

#[test]
fn fault_schedule_is_byte_identical_across_runs_and_threads() {
    let cfg = FaultConfig::mid_life(0xFA);
    let base = FaultPlan::preview_schedule(cfg, 8192);
    assert_eq!(base, FaultPlan::preview_schedule(cfg, 8192));
    let handles: Vec<_> = (0..4)
        .map(|_| std::thread::spawn(move || FaultPlan::preview_schedule(cfg, 8192)))
        .collect();
    for h in handles {
        assert_eq!(
            h.join().unwrap(),
            base,
            "fault schedule depends on the thread that derives it"
        );
    }
}

/// Lockstep differential: every completion instant, the final write
/// amplification, and the flash counters must match between a device
/// with a quiet plan installed and one with no fault layer at all.
fn quiet_plan_is_invisible(
    mut with_quiet: Box<dyn BlockInterface>,
    mut without: Box<dyn BlockInterface>,
) {
    let cap = with_quiet.capacity_pages();
    assert_eq!(cap, without.capacity_pages());
    let mut ta = Nanos::ZERO;
    let mut tb = Nanos::ZERO;
    for lba in 0..cap {
        ta = with_quiet.write(WriteReq::new(lba), ta).unwrap();
        tb = without.write(WriteReq::new(lba), tb).unwrap();
        assert_eq!(ta, tb, "fill diverged at lba {lba}");
    }
    let mut x = 9u64;
    for i in 0..2 * cap {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let (lba, is_read) = (x % cap, x.is_multiple_of(3));
        if is_read {
            ta = with_quiet.read(lba, ta).unwrap();
            tb = without.read(lba, tb).unwrap();
        } else {
            ta = with_quiet.write(WriteReq::new(lba), ta).unwrap();
            tb = without.write(WriteReq::new(lba), tb).unwrap();
        }
        assert_eq!(ta, tb, "op {i} diverged");
        if i.is_multiple_of(32) {
            ta = with_quiet.maintenance(ta).unwrap();
            tb = without.maintenance(tb).unwrap();
        }
    }
    assert_eq!(
        with_quiet.write_amplification(),
        without.write_amplification()
    );
    assert_eq!(with_quiet.flash_stats(), without.flash_stats());
}

#[test]
fn quiet_plan_is_invisible_on_conv() {
    quiet_plan_is_invisible(
        Box::new(conv(Some(FaultConfig::new(0x9999)))),
        Box::new(conv(None)),
    );
}

#[test]
fn quiet_plan_is_invisible_on_zns() {
    quiet_plan_is_invisible(
        Box::new(emu(Some(FaultConfig::new(0x9999)))),
        Box::new(emu(None)),
    );
}
