//! Offline shim for the slice of the `criterion` API the workspace's
//! micro-benchmarks use: `Criterion::bench_function`, `Bencher::iter`,
//! `sample_size`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! The build environment has no network access, so instead of the real
//! statistical harness this runs a short warm-up followed by timed
//! batches and prints mean ns/iter — enough to spot order-of-magnitude
//! regressions with `cargo bench`, with zero dependencies.

use std::time::Instant;

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            batches: self.sample_size,
            ns_per_iter: f64::NAN,
        };
        f(&mut b);
        if b.ns_per_iter.is_nan() {
            println!("{id:<40} (no iterations)");
        } else {
            println!("{id:<40} {:>12.1} ns/iter", b.ns_per_iter);
        }
        self
    }
}

/// Passed to the benchmark closure; `iter` times the workload.
#[derive(Debug)]
pub struct Bencher {
    batches: usize,
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, storing mean wall-clock ns per call.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm up and estimate a batch size targeting ~1ms per batch.
        let warmup = Instant::now();
        let mut calls = 0u64;
        while warmup.elapsed().as_millis() < 10 {
            black_box(routine());
            calls += 1;
        }
        let per_call_ns = warmup.elapsed().as_nanos() as f64 / calls.max(1) as f64;
        let batch = ((1_000_000.0 / per_call_ns.max(1.0)) as u64).clamp(1, 1_000_000);

        let timed = Instant::now();
        let mut total_calls = 0u64;
        for _ in 0..self.batches {
            for _ in 0..batch {
                black_box(routine());
            }
            total_calls += batch;
        }
        self.ns_per_iter = timed.elapsed().as_nanos() as f64 / total_calls.max(1) as f64;
    }
}

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Mirrors `criterion_group!`, including the `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
