//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access, so the workspace vendors
//! the thin slice of `rand` it actually uses: [`rngs::SmallRng`] seeded
//! via [`SeedableRng::seed_from_u64`], plus [`Rng::gen`] and
//! [`Rng::gen_range`] over integer and float ranges. The generator is
//! xoshiro256** (the same family the real `SmallRng` uses on 64-bit
//! targets), seeded through SplitMix64, so streams are deterministic,
//! well-mixed, and cheap.
//!
//! Semantics intentionally match the real crate where the simulator
//! depends on them: `gen_range` panics on an empty range, integer
//! sampling covers the full requested span, and `gen::<f64>()` is
//! uniform in `[0, 1)`.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it through
    /// SplitMix64 as the reference implementation recommends.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (uniform `[0, 1)` for floats, uniform over all values for
    /// integers and `bool`).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T)
    where
        Self: Sized,
    {
        dest.fill_from(self);
    }
}

/// Buffer types fillable by [`Rng::fill`].
pub trait Fill {
    /// Overwrites `self` with random data from `rng`.
    fn fill_from<R: RngCore>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore>(&mut self, rng: &mut R) {
        for chunk in self.chunks_mut(8) {
            let word = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl Fill for [u64] {
    fn fill_from<R: RngCore>(&mut self, rng: &mut R) {
        for slot in self {
            *slot = rng.next_u64();
        }
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable by [`Rng::gen`].
pub trait SampleStandard {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types samplable by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)` (`high` included when
    /// `inclusive`). Callers guarantee the range is non-empty.
    fn sample_between<R: RngCore>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let lo = low as i128;
                let hi = high as i128;
                let span = (hi - lo + if inclusive { 1 } else { 0 }) as u128;
                // Modulo bias is ~2^-64 for the spans the simulator uses;
                // determinism and speed matter more here than exactness.
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                let unit = <$t as SampleStandard>::sample_standard(rng);
                low + unit * (high - low)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "cannot sample empty range");
        T::sample_between(rng, low, high, true)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0u64; 4] {
                // The all-zero state is a fixed point; nudge it.
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<f64>() == b.gen::<f64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5u32..=6);
            assert!((5..=6).contains(&y));
            let f = rng.gen_range(-0.5f64..=0.5);
            assert!((-0.5..=0.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn full_span_is_reachable() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = rng.gen_range(5u64..5);
    }

    #[test]
    fn signed_ranges_cover_negatives() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut hit_neg = false;
        for _ in 0..100 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
            hit_neg |= v < 0;
        }
        assert!(hit_neg);
    }
}
